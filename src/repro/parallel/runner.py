"""The process-pool sweep executor (DESIGN.md §6).

:class:`ParallelRunner` fans a sweep of (session, plan) grid points —
the shape of every experiment in fig5/6/7/9 and table8 — across a
process pool, one worker task per grid point. The expensive, shared
half of each query is hoisted out of the pool:

1. **Phase 1 once.** For every distinct (session, plan configuration)
   pair, the parent builds (or fetches from the session cache) the
   Phase 1 entry — sampling, CMDN grid training, diff detection,
   proxy inference — exactly once.
2. **Serialize and share.** Videos, scoring functions, configurations
   and the Phase 1 entries are pickled into one payload per sweep and
   shipped to each worker through the pool initializer.
3. **Phase 2 in workers.** Each worker reconstructs its sessions,
   adopts the prebuilt Phase 1 entries (skipping all CMDN training),
   and runs only the cleaning loop for its grid points.

Determinism contract: plans are normalized to ``deterministic_timing``
(the one nondeterministic report input — wall-clock measurement of
select-candidate — is disabled), after which a report is a pure
function of (video, scoring, config, plan). Serial and parallel
execution at any worker count therefore produce **bit-identical**
``QueryReport.to_json()`` strings, which
``tests/test_parallel_equivalence.py`` certifies. Worker exceptions
are re-raised in the parent in grid order — the error the serial loop
would have hit first — so failures are deterministic too.

Cost-ledger semantics: each grid point's Phase 2 charges land in a
fresh per-query ledger returned alongside its report;
:meth:`SweepOutcome.merged_cost` folds those into one sweep ledger and
adds each distinct Phase 1 ledger exactly once (no double counting —
the satellite regression tests pin this).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.result import QueryReport
from ..oracle.cost import CostModel, merge_cost_models
from .pool import resolve_workers

# ----------------------------------------------------------------------
# Worker-side protocol. Everything here must be module-level (pickled
# by reference) and must reconstruct state from the payload alone, so
# it behaves identically under fork and spawn start methods.

#: Worker-global sessions, indexed like the parent's distinct sessions.
_WORKER_SESSIONS: List = []


@dataclass
class _SessionSpec:
    """Everything a worker needs to reconstruct one session."""

    video: object
    scoring: object
    config: object
    unit_costs: Dict[str, float]
    #: Prebuilt Phase 1 artifacts: one (config, entry) per distinct
    #: plan configuration seen in the sweep.
    entries: List[Tuple[object, object]] = field(default_factory=list)

    def build_session(self):
        from ..api.session import Session

        session = Session(
            self.video, self.scoring,
            config=self.config, unit_costs=self.unit_costs)
        for config, entry in self.entries:
            session.adopt_phase1(entry, config)
        return session


def _worker_init(payload: bytes) -> None:
    """Pool initializer: materialize the sweep's sessions once."""
    global _WORKER_SESSIONS
    specs: List[_SessionSpec] = pickle.loads(payload)
    _WORKER_SESSIONS = [spec.build_session() for spec in specs]


def _worker_run(task) -> Tuple[QueryReport, CostModel]:
    """Run one grid point: Phase 2 only, against the adopted Phase 1."""
    from ..api.executor import QueryExecutor

    session_index, plan = task
    session = _WORKER_SESSIONS[session_index]
    detail = QueryExecutor(session, workers=1).execute_detailed(plan)
    return detail.report, detail.phase2_cost


# ----------------------------------------------------------------------
# Parent-side runner.


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in grid order."""

    #: One report per grid point, aligned with the submitted plans.
    reports: List[QueryReport]
    #: The per-query Phase 2 ledger behind each report.
    phase2_costs: List[CostModel]
    #: Each distinct Phase 1 ledger, exactly once (build order).
    phase1_costs: List[CostModel]

    def merged_cost(self) -> CostModel:
        """One sweep-level ledger: Phase 1 once + every Phase 2.

        Per-worker charges merge key-wise; the shared Phase 1 ledgers
        are added exactly once regardless of how many grid points (or
        workers) reused them, so nothing double-counts.
        """
        return merge_cost_models([*self.phase1_costs, *self.phase2_costs])


class ParallelRunner:
    """Fan experiment sweeps across a process pool, Phase 1 shared.

    ``workers`` resolves through the usual rule (explicit value, else
    ``REPRO_WORKERS``, else serial). ``deterministic`` (default on)
    normalizes every plan to ``deterministic_timing`` so reports are
    bit-identical across worker counts; turn it off only when wall
    measurement of select-candidate matters more than reproducibility.
    ``start_method`` picks the multiprocessing start method (default:
    the platform default — fork on Linux).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        deterministic: bool = True,
        start_method: Optional[str] = None,
    ):
        self.workers = resolve_workers(workers)
        self.deterministic = deterministic
        self.start_method = start_method

    # ------------------------------------------------------------------
    def run_sweep(
        self, session, plans: Sequence
    ) -> List[QueryReport]:
        """Execute many plans against one session, in plan order."""
        return self.run_grid([(session, plan) for plan in plans])

    def run_grid(self, grid: Sequence[Tuple[object, object]]):
        """Execute (session, plan) grid points, returning reports."""
        return self.run_grid_detailed(grid).reports

    def run_grid_detailed(
        self, grid: Sequence[Tuple[object, object]]
    ) -> SweepOutcome:
        """Execute a grid and keep the cost ledgers (grid order)."""
        from ..api.executor import QueryExecutor
        from ..api.session import phase1_key

        grid = list(grid)
        if not grid:
            return SweepOutcome(reports=[], phase2_costs=[], phase1_costs=[])

        # Normalize plans (deterministic timing) and index the distinct
        # sessions in first-appearance order.
        sessions: List = []
        session_index: Dict[int, int] = {}
        tasks: List[Tuple[int, object]] = []
        for session, plan in grid:
            index = session_index.get(id(session))
            if index is None:
                index = len(sessions)
                session_index[id(session)] = index
                sessions.append(session)
            if self.deterministic and not plan.deterministic_timing:
                plan = dataclasses.replace(plan, deterministic_timing=True)
            tasks.append((index, plan))

        # Phase 1 once per (session, configuration): built here in the
        # parent — workers never train a CMDN.
        phase1_costs: List[CostModel] = []
        specs = [
            _SessionSpec(
                video=session.video,
                scoring=session.scoring,
                config=session.config,
                unit_costs=session.resolved_unit_costs(),
                entries=[],
            )
            for session in sessions
        ]
        seen_entries: set = set()
        for index, plan in tasks:
            session = sessions[index]
            key = phase1_key(plan.config)
            if (index, key) in seen_entries:
                continue
            seen_entries.add((index, key))
            entry = session.phase1(plan.config)
            specs[index].entries.append((plan.config, entry))
            phase1_costs.append(entry.cost_model)

        if self.workers <= 1 or len(tasks) == 1:
            # Serial fallback: same normalized plans, same sessions, no
            # pool — the reference the parallel path must bit-match.
            reports: List[QueryReport] = []
            phase2_costs: List[CostModel] = []
            for index, plan in tasks:
                detail = QueryExecutor(
                    sessions[index], workers=1).execute_detailed(plan)
                reports.append(detail.report)
                phase2_costs.append(detail.phase2_cost)
            return SweepOutcome(
                reports=reports,
                phase2_costs=phase2_costs,
                phase1_costs=phase1_costs,
            )

        payload = pickle.dumps(specs, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context(self.start_method)
        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(payload,),
        ) as pool:
            futures = [pool.submit(_worker_run, task) for task in tasks]
            # Gather in grid order; re-raise the earliest failure so
            # errors are deterministic (what the serial loop hits
            # first), cancelling still-pending grid points rather than
            # letting the rest of the sweep burn CPU.
            try:
                for future in futures:
                    error = future.exception()
                    if error is not None:
                        raise error
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            results = [future.result() for future in futures]

        return SweepOutcome(
            reports=[report for report, _ in results],
            phase2_costs=[cost for _, cost in results],
            phase1_costs=phase1_costs,
        )


def run_plans(
    session,
    plans: Sequence,
    *,
    workers: Optional[int] = None,
) -> List[QueryReport]:
    """Convenience: one-session sweep with default determinism."""
    return ParallelRunner(workers).run_sweep(session, plans)
