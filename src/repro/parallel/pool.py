"""Worker-count resolution and ordered chunk mapping primitives.

This module is the dependency-free floor of :mod:`repro.parallel`: it
may be imported from anywhere in the library (including
:mod:`repro.core.phase1`) without creating an import cycle, because it
depends only on the standard library and :mod:`repro.errors`.

Worker counts resolve through one rule everywhere: an explicit
argument wins, otherwise the ``REPRO_WORKERS`` environment variable,
otherwise serial execution. Running the test suite under
``REPRO_WORKERS=4`` therefore exercises every pool-aware code path
without touching a single call site.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import ConfigurationError

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(
    workers: Optional[int] = None, *, default: int = 1
) -> int:
    """The effective worker count for a parallel-capable call site.

    ``workers`` wins when given; otherwise :data:`WORKERS_ENV` is
    consulted; otherwise ``default`` (serial). Always >= 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV}={raw!r} is not an integer") from None
        else:
            workers = default
    if workers < 1:
        raise ConfigurationError(
            f"worker count must be >= 1, got {workers}")
    return int(workers)


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` preserving order.

    With one worker this is a plain loop; otherwise a thread pool
    (numpy releases the GIL in its inner kernels, so chunked inference
    scales without pickling anything). Results are returned in input
    order either way, so callers are deterministic regardless of the
    worker count.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))
