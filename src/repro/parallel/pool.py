"""Worker-count resolution and ordered chunk mapping primitives.

This module is the dependency-free floor of :mod:`repro.parallel`: it
may be imported from anywhere in the library (including
:mod:`repro.core.phase1`) without creating an import cycle, because it
depends only on the standard library and :mod:`repro.errors`.

Worker counts resolve through one rule everywhere: an explicit
argument wins, otherwise the ``REPRO_WORKERS`` environment variable,
otherwise serial execution. Running the test suite under
``REPRO_WORKERS=4`` therefore exercises every pool-aware code path
without touching a single call site.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import ConfigurationError, ServiceClosedError

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(
    workers: Optional[int] = None, *, default: int = 1
) -> int:
    """The effective worker count for a parallel-capable call site.

    ``workers`` wins when given; otherwise :data:`WORKERS_ENV` is
    consulted; otherwise ``default`` (serial). Always >= 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV}={raw!r} is not an integer") from None
        else:
            workers = default
    if workers < 1:
        raise ConfigurationError(
            f"worker count must be >= 1, got {workers}")
    return int(workers)


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` preserving order.

    With one worker this is a plain loop; otherwise a thread pool
    (numpy releases the GIL in its inner kernels, so chunked inference
    scales without pickling anything). Results are returned in input
    order either way, so callers are deterministic regardless of the
    worker count.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class PersistentPool:
    """A lazily started, long-lived process pool.

    :class:`~repro.parallel.runner.ParallelRunner` spins up one pool
    per sweep because each sweep ships its whole payload through the
    initializer. The query service instead keeps *one* pool alive for
    its lifetime and ships per-task payloads, so worker-side state
    (memoized sessions, score caches) persists across queries. This
    wrapper adds lazy startup, thread-safe submission, and idempotent
    shutdown on top of :class:`~concurrent.futures.ProcessPoolExecutor`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
    ):
        self.workers = resolve_workers(workers)
        self.start_method = start_method
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    def submit(self, fn, /, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)`` on the pool (starts lazily)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("process pool is shut down")
            if self._executor is None:
                context = multiprocessing.get_context(self.start_method)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context)
            return self._executor.submit(fn, *args, **kwargs)

    @property
    def started(self) -> bool:
        return self._executor is not None

    def shutdown(self, *, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
