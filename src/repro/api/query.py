"""The fluent, immutable query builder.

``session.query().windows(size=30).topk(k=10).guarantee(0.9)`` builds
a description of a Top-K query one clause at a time. Every clause
validates its arguments eagerly (raising
:class:`~repro.errors.QueryError` /
:class:`~repro.errors.ConfigurationError` at call time, not at run
time) and returns a *new* builder, so partial queries can be shared
and forked across a sweep without aliasing surprises::

    base = session.query().guarantee(0.95)
    for k in (5, 10, 25):
        report = base.topk(k).run()

``plan()`` compiles the builder to an executable
:class:`~repro.api.plan.QueryPlan`; ``run()`` compiles and executes.
"""

from __future__ import annotations

import dataclasses
import numbers
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..config import EverestConfig
from ..core.windows import WINDOW_STEP_DIVISOR
from ..errors import ConfigurationError, QueryError
from .plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.result import QueryReport
    from .session import Session

#: Sentinel distinguishing "not set" from an explicit ``None``.
_UNSET = object()


@dataclass(frozen=True)
class Query:
    """An immutable, partially built Top-K query."""

    session: "Session" = field(repr=False, compare=False)
    _k: int = 50
    _thres: float = 0.9
    _mode: str = "frames"
    _window_size: Optional[int] = None
    _window_step: Optional[float] = None
    _oracle_budget: object = _UNSET
    _config: Optional[EverestConfig] = None
    _deterministic_timing: bool = False
    _window_seconds: Optional[float] = None

    # -- clauses -------------------------------------------------------
    def topk(self, k: int) -> "Query":
        """Ask for the Top-``k`` highest-scoring frames or windows."""
        # Integral (not bare int) so numpy integers keep working.
        if not isinstance(k, numbers.Integral) or isinstance(k, bool) \
                or k < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        return dataclasses.replace(self, _k=int(k))

    def guarantee(self, thres: float) -> "Query":
        """Require the answer to be exact with probability >= ``thres``."""
        if not 0.0 < thres <= 1.0:
            raise QueryError(
                f"guarantee threshold must be in (0, 1], got {thres!r}")
        return dataclasses.replace(self, _thres=float(thres))

    def frames(self) -> "Query":
        """Rank individual frames (the default)."""
        return dataclasses.replace(
            self, _mode="frames", _window_size=None, _window_step=None)

    def windows(
        self, size: int, *, step: Optional[float] = None
    ) -> "Query":
        """Rank tumbling windows of ``size`` frames by mean score.

        ``step`` is the window relation's quantization step; the
        default is the UDF step / 4 (windows live on a finer scale
        than single frames). ``size=1`` is the frame query.
        """
        if not isinstance(size, numbers.Integral) or isinstance(size, bool) \
                or size < 1:
            raise QueryError(
                f"window size must be a positive integer, got {size!r}")
        if step is not None and not step > 0:
            raise QueryError(
                f"window_step must be positive, got {step!r}")
        if self._window_seconds is not None:
            raise QueryError(
                "tumbling windows(size=...) cannot be combined with a "
                "sliding window(seconds=...) clause")
        return dataclasses.replace(
            self, _mode="windows", _window_size=int(size), _window_step=step)

    def window(self, *, seconds: float) -> "Query":
        """Restrict the query to the last ``seconds`` of the video.

        Sliding-window semantics (DESIGN.md §13): the answer is the
        Top-K over frames in ``[horizon - seconds, watermark)``, where
        the horizon is the stream clock for
        :class:`~repro.windowed.WindowedVideo` sources and the end of
        the video otherwise. Mutually exclusive with the tumbling
        ``windows(size=...)`` relation. On a windowed streaming session
        the clause is implicit — every query is windowed to the
        session's window — and an explicit value may not exceed it.
        """
        if isinstance(seconds, bool) \
                or not isinstance(seconds, numbers.Real) \
                or not float(seconds) > 0.0 \
                or not float(seconds) < float("inf"):
            raise QueryError(
                f"window seconds must be a positive finite number, "
                f"got {seconds!r}")
        if self._mode == "windows":
            raise QueryError(
                "sliding window(seconds=...) cannot be combined with a "
                "tumbling windows(size=...) relation")
        return dataclasses.replace(self, _window_seconds=float(seconds))

    def oracle_budget(self, budget: Optional[int]) -> "Query":
        """Cap Phase 2 oracle invocations (``None`` = unbounded)."""
        if budget is not None:
            if not isinstance(budget, numbers.Integral) \
                    or isinstance(budget, bool) or budget < 1:
                raise ConfigurationError(
                    f"oracle_budget must be None or a positive integer, "
                    f"got {budget!r}")
            budget = int(budget)
        return dataclasses.replace(self, _oracle_budget=budget)

    def with_config(self, config: EverestConfig) -> "Query":
        """Override the session configuration for this query only.

        Overrides that keep ``(phase1, diff, seed)`` untouched still
        hit the session's Phase 1 cache.
        """
        if not isinstance(config, EverestConfig):
            raise ConfigurationError(
                f"with_config expects an EverestConfig, got {config!r}")
        return dataclasses.replace(self, _config=config)

    def deterministic_timing(self, enabled: bool = True) -> "Query":
        """Make the report a pure function of the plan and Phase 1.

        Disables wall-clock measurement of the algorithmic stages
        (select-candidate), which is the only nondeterministic input to
        a :class:`~repro.core.result.QueryReport`. Parallel execution
        forces this on so serial and pooled runs are bit-identical.
        """
        return dataclasses.replace(
            self, _deterministic_timing=bool(enabled))

    # -- compilation and execution -------------------------------------
    def plan(self) -> QueryPlan:
        """Compile to an executable plan (cheap; Phase 1 not run)."""
        session = self.session
        config = self._config if self._config is not None else session.config
        mode = self._mode
        window_size = self._window_size
        window_step = self._window_step
        if mode == "windows" and window_size == 1:
            # A 1-frame window is the frame query (paper Section 3.4).
            mode, window_size, window_step = "frames", None, None
        if mode == "windows" and window_step is None:
            window_step = session.scoring.step / WINDOW_STEP_DIVISOR
        budget = (
            config.phase2.oracle_budget
            if self._oracle_budget is _UNSET else self._oracle_budget
        )
        frame_ranges, window_seconds = self._resolve_window(mode)
        return QueryPlan(
            video_name=session.video.name,
            udf_name=session.scoring.name,
            num_frames=len(session.video),
            mode=mode,
            k=self._k,
            thres=self._thres,
            window_size=window_size,
            window_step=window_step,
            oracle_budget=budget,
            config=config,
            unit_costs=session.resolved_unit_costs(),
            deterministic_timing=self._deterministic_timing,
            frame_ranges=frame_ranges,
            window_seconds=window_seconds,
        )

    def _resolve_window(self, mode):
        """Compile the sliding-window clause to a frame range.

        On a windowed video the session window applies implicitly; an
        explicit clause may narrow but never widen it (the maintained
        relation only covers the session window).
        """
        from ..video.streaming import window_frames_for

        video = self.session.video
        session_window = getattr(video, "window_frames", None)
        seconds = self._window_seconds
        if seconds is None and session_window is None:
            return None, None
        if mode != "frames":  # pragma: no cover - clauses reject earlier
            raise QueryError(
                "sliding windows require the frame relation")
        num_frames = len(video)
        horizon = int(getattr(video, "horizon", num_frames))
        if seconds is None:
            window_frames = session_window
            seconds = float(video.window_seconds)
        else:
            window_frames = window_frames_for(seconds, video.fps)
            if session_window is not None \
                    and window_frames > session_window:
                raise QueryError(
                    f"window of {seconds:g}s ({window_frames} frames) is "
                    f"wider than the session window "
                    f"({session_window} frames); the maintained relation "
                    f"does not cover it")
        lo = max(0, horizon - window_frames)
        if lo >= num_frames:
            raise QueryError(
                f"window of {seconds:g}s has fully expired: it starts at "
                f"frame {lo} but the stream has only {num_frames} frames")
        return ((lo, num_frames),), float(seconds)

    def explain(self) -> str:
        """The compiled plan, rendered for humans."""
        return self.plan().explain()

    def run(
        self,
        *,
        parallel: bool = False,
        workers: Optional[int] = None,
    ) -> "QueryReport":
        """Compile and execute, returning the full query report.

        ``parallel=True`` routes execution through the sweep path
        (:class:`~repro.parallel.runner.ParallelRunner`) under its
        deterministic-timing contract, making the report bit-identical
        to ``self.deterministic_timing().run()``. A single plan is not
        worth a pool, so the runner's serial fallback executes it
        in-process; actual fan-out happens when several plans go
        through :meth:`Session.execute_many` together. ``workers``
        defaults to the ``REPRO_WORKERS`` environment variable.
        """
        if not parallel:
            return self.session.execute(self.plan())
        return self.session.execute_many(
            [self.plan()], workers=workers)[0]

    def over_corpus(self, corpus) -> "object":
        """Re-target this query's parameters at a whole corpus.

        Returns a :class:`~repro.corpus.query.CorpusQuery` carrying
        this builder's K, guarantee, budget, config override, timing
        mode and sliding-window clause — the federated equivalent of
        the same query. The session is dropped (the corpus owns one
        per member); tumbling window clauses do not transfer, since
        window aggregation across shard boundaries is undefined.
        """
        from ..corpus.corpus import VideoCorpus
        from ..corpus.query import CorpusQuery

        if not isinstance(corpus, VideoCorpus):
            raise QueryError(
                f"over_corpus expects a VideoCorpus, got {corpus!r}")
        if self._mode == "windows":
            raise QueryError(
                "window queries cannot target a corpus; window "
                "aggregation across shard boundaries is undefined")
        return CorpusQuery(
            corpus=corpus,
            _k=self._k,
            _thres=self._thres,
            _oracle_budget=self._oracle_budget,
            _config=self._config,
            _deterministic_timing=self._deterministic_timing,
            _window_seconds=self._window_seconds,
        )

    def subscribe(self):
        """Maintain this query live over a streaming session.

        Only valid on queries built from a
        :class:`~repro.streaming.session.StreamingSession`. Returns a
        :class:`~repro.streaming.live_topk.LiveTopK` that is refreshed
        immediately and then re-certified on every ``append`` — one
        report per append, batch-equivalent ledgers, fresh oracle work
        proportional to the delta.
        """
        subscribe = getattr(self.session, "subscribe", None)
        if subscribe is None:
            raise QueryError(
                "subscribe() needs a streaming session; open one with "
                "Session.open_stream(...)")
        return subscribe(self)
