"""Sessions: one opened (video, UDF) pair, many queries.

A :class:`Session` is the unit of Phase-1 reuse. Opening a session
binds a video to a scoring function and sets up the cost ledgers;
every query built from it (``session.query()...run()``) shares the
uncertain relation D0, so a parameter sweep over K / thres / window
size pays for sampling, labelling and CMDN training exactly once while
each report still accounts the full Phase 1 cost (the paper re-runs
Phase 1 per query; the ledger arithmetic is identical).

The Phase 1 cache is explicit and keyed on the parts of the
configuration D0 actually depends on — ``(phase1, diff, seed)`` — so
queries that override only Phase 2 knobs (batch size, oracle budget)
still hit the cache, while a changed training grid transparently
builds a second relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..config import EverestConfig
from ..oracle.base import Oracle, ScoringFunction
from ..oracle.cost import CostModel
from ..core.phase1 import Phase1Result, run_phase1
from ..trace import span as trace_span
from ..video.synthetic import SyntheticVideo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .query import Query
    from .plan import QueryPlan
    from ..core.result import QueryReport

#: Cache key capturing everything D0 depends on: explicit
#: ``(field, value)`` pairs, stable across dataclass field reordering,
#: default changes, and ``repr`` formatting (the durable identity the
#: streaming artifact store persists).
Phase1Key = Tuple[Tuple[str, object], ...]


@dataclass
class Phase1Entry:
    """One cached Phase 1 run plus its cost ledger."""

    result: Phase1Result
    oracle_calls: int
    cost_model: CostModel


def phase1_key(config: EverestConfig) -> Phase1Key:
    """The cache key for a configuration's Phase 1 artifacts.

    Every configuration field D0 depends on is named explicitly — the
    earlier ``repr()``-based key silently split the cache whenever a
    dataclass gained a field or changed its field order, and could not
    be persisted meaningfully. Phase 2 knobs are deliberately absent:
    queries that override only them must keep hitting the cache.
    """
    phase1, diff = config.phase1, config.diff
    return (
        ("sample_fraction", float(phase1.sample_fraction)),
        ("max_train_samples", int(phase1.max_train_samples)),
        ("min_train_samples", int(phase1.min_train_samples)),
        ("holdout_samples", int(phase1.holdout_samples)),
        ("cmdn_grid",
         tuple((int(g), int(h)) for g, h in phase1.cmdn_grid)),
        ("epochs", int(phase1.epochs)),
        ("batch_size", int(phase1.batch_size)),
        ("learning_rate", float(phase1.learning_rate)),
        ("use_feature_mdn", bool(phase1.use_feature_mdn)),
        ("quantization_step",
         None if phase1.quantization_step is None
         else float(phase1.quantization_step)),
        ("truncate_sigmas", float(phase1.truncate_sigmas)),
        ("sample_prefix",
         None if phase1.sample_prefix is None
         else int(phase1.sample_prefix)),
        ("mse_threshold", float(diff.mse_threshold)),
        ("clip_size", int(diff.clip_size)),
        ("seed", int(config.seed)),
    )


def _check_phase1_key_covers_every_field() -> None:
    """Import-time guard: the key must name every config field.

    The explicit key is fail-unsafe if a field is added to
    :class:`Phase1Config` / :class:`DiffDetectorConfig` and forgotten
    here (two configs differing only in the new field would share
    Phase-1 artifacts). This trips the moment such a field lands —
    unconditionally, not via ``assert`` (``python -O`` must not strip
    the one check that makes the explicit key safe).
    """
    import dataclasses

    from ..config import DiffDetectorConfig, Phase1Config

    named = {name for name, _ in phase1_key(EverestConfig())}
    expected = (
        {f.name for f in dataclasses.fields(Phase1Config)}
        | {f.name for f in dataclasses.fields(DiffDetectorConfig)}
        | {"seed"}
    )
    if named != expected:
        raise RuntimeError(
            "phase1_key is out of sync with the config dataclasses: "
            f"missing {sorted(expected - named)}, "
            f"stale {sorted(named - expected)}")


_check_phase1_key_covers_every_field()


def build_phase1_entry(
    video,
    scoring: ScoringFunction,
    unit_costs: Dict[str, float],
    config: EverestConfig,
    *,
    cost_model: Optional[CostModel] = None,
) -> Phase1Entry:
    """Run Phase 1 and package the artifacts with their ledger.

    The one Phase-1 build routine, shared by :meth:`Session.phase1`
    and the service artifact layer (whose single-flight builds happen
    outside any one session). Charges are purely simulated — no
    wall-clock timers run during Phase 1 — so two builds of the same
    ``(video, scoring, config)`` produce bit-identical entries; the
    default ledger is marked ``wall_clock=False`` accordingly, so
    merged ledgers built from Phase-1 folds stay deterministic
    (:func:`~repro.oracle.cost.merge_cost_models` propagates the flag).
    """
    cost_model = cost_model if cost_model is not None \
        else CostModel(unit_costs, wall_clock=False)
    oracle = Oracle(scoring, cost_model, cost_key="oracle_label")
    result = run_phase1(
        video,
        oracle,
        config=config.phase1,
        diff_config=config.diff,
        cost_model=cost_model,
        seed=config.seed,
    )
    return Phase1Entry(
        result=result,
        oracle_calls=oracle.calls,
        cost_model=cost_model,
    )


def estimate_phase1_seconds(
    num_frames: int,
    unit_costs: Dict[str, float],
    config: EverestConfig,
    *,
    retained_fraction: float = 1.0,
) -> float:
    """A prior for one Phase-1 build's simulated cost (no build run).

    Mirrors the charge structure of
    :func:`~repro.core.phase1.replay_phase1_charges` with the two
    quantities unknowable before the build estimated: the number of
    retained frames (``retained_fraction`` of the prefix; the
    difference detector discards the rest) and the grid's
    sample-epochs (every candidate trains on the full sample for every
    epoch). This is the cold-start prior the optimizer's
    :class:`~repro.optimizer.estimator.CostEstimator` uses until real
    build ledgers calibrate it.
    """
    phase1 = config.phase1
    pool = phase1.sample_pool(num_frames)
    train = phase1.train_sample_size(pool)
    holdout = phase1.holdout_sample_size(pool)
    retained = retained_fraction * num_frames
    get = unit_costs.get
    return (
        (train + holdout) * (get("oracle_label", 0.0) + get("decode", 0.0))
        + train * phase1.epochs * len(phase1.cmdn_grid)
        * get("cmdn_train", 0.0)
        + num_frames * (get("diff_detect", 0.0) + get("decode", 0.0))
        + retained * get("cmdn_infer", 0.0)
    )


class Session:
    """An opened (video, scoring function) pair that serves queries."""

    def __init__(
        self,
        video: SyntheticVideo,
        scoring: ScoringFunction,
        *,
        config: Optional[EverestConfig] = None,
        unit_costs: Optional[Dict[str, float]] = None,
    ):
        self.video = video
        self.scoring = scoring
        self.config = config if config is not None else EverestConfig()
        # Labelling and confirming charge the same per-frame latency as
        # the UDF's oracle, under dedicated Table 8 ledger keys.
        base = CostModel(unit_costs)
        oracle_unit = base.unit_costs.get(scoring.cost_key, 0.0)
        overrides = dict(unit_costs or {})
        overrides.setdefault("oracle_label", oracle_unit)
        overrides.setdefault("oracle_confirm", oracle_unit)
        self._unit_costs = overrides
        self._phase1_cache: Dict[Phase1Key, Phase1Entry] = {}
        # Ledgers handed out before their Phase 1 runs (so callers can
        # hold a stable reference to the ledger Phase 1 will charge).
        self._phase1_cost_models: Dict[Phase1Key, CostModel] = {}
        # Service bindings (None outside a QueryService): a shared
        # artifact provider supplying single-flight Phase-1 builds, and
        # the service-scope score cache executors confirm through.
        self.artifacts = None
        self.shared_score_cache = None

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        video,
        scoring,
        *,
        config: Optional[EverestConfig] = None,
        unit_costs: Optional[Dict[str, float]] = None,
        **video_kwargs,
    ) -> "Session":
        """Open a session, resolving registry names for either side.

        ``video`` and ``scoring`` may be objects or registered names —
        e.g. ``Session.open("daxi-old-street", "count[person]")``.
        Extra keyword arguments are forwarded to the video builder.
        """
        from .registry import resolve_udf, resolve_video

        if isinstance(video, str):
            video = resolve_video(video, **video_kwargs)
        elif video_kwargs:
            raise TypeError(
                "video keyword arguments need a registry name, "
                "not a video object")
        if isinstance(scoring, str):
            scoring = resolve_udf(scoring)
        return cls(video, scoring, config=config, unit_costs=unit_costs)

    @classmethod
    def open_stream(
        cls,
        video,
        scoring,
        *,
        initial_frames: Optional[int] = None,
        config: Optional[EverestConfig] = None,
        unit_costs: Optional[Dict[str, float]] = None,
        streaming=None,
        autosave_path=None,
        score_cache=None,
        window_seconds: Optional[float] = None,
        **video_kwargs,
    ):
        """Open a streaming session over a growing video (DESIGN.md §7).

        ``video`` may be a closed source (object or registry name —
        wrapped with ``initial_frames`` as the bootstrap segment) or a
        ready :class:`~repro.video.streaming.StreamingVideo`.
        ``streaming`` takes a
        :class:`~repro.streaming.phase1_incremental.StreamingConfig`
        (drift auditing / warm-retraining knobs). Returns a
        :class:`~repro.streaming.session.StreamingSession`:
        ``append(n)`` reveals frames, ``query()...subscribe()`` yields
        a report per append, ``checkpoint(path)`` persists the Phase-1
        artifacts.

        ``window_seconds`` opens a sliding-window session instead
        (:class:`~repro.windowed.WindowedSession`, DESIGN.md §13):
        answers cover only the last ``window_seconds`` of stream time,
        ``tick(frames)`` expires frames without arrivals, and every
        subscription delivers one report per append *and* per tick.
        """
        from ..streaming.session import StreamingSession
        from ..windowed.session import WindowedSession
        from ..windowed.view import WindowedVideo
        from .registry import resolve_udf, resolve_video

        if isinstance(video, str):
            video = resolve_video(video, **video_kwargs)
        elif video_kwargs:
            raise TypeError(
                "video keyword arguments need a registry name, "
                "not a video object")
        if isinstance(scoring, str):
            scoring = resolve_udf(scoring)
        if window_seconds is not None or isinstance(video, WindowedVideo):
            return WindowedSession(
                video, scoring, window_seconds=window_seconds,
                initial_frames=initial_frames,
                config=config, unit_costs=unit_costs,
                streaming=streaming, autosave_path=autosave_path,
                score_cache=score_cache)
        # initial_frames is forwarded unconditionally: the constructor
        # validates the (StreamingVideo, initial_frames) combinations.
        return StreamingSession(
            video, scoring, initial_frames=initial_frames,
            config=config, unit_costs=unit_costs,
            streaming=streaming, autosave_path=autosave_path,
            score_cache=score_cache)

    @classmethod
    def resume(cls, path):
        """Warm-start a streaming session from a checkpoint directory.

        The resumed session re-serves its watermark with zero Phase-1
        oracle calls: CMDN weights, the difference-detector state, the
        inference cache, revealed scores and ledgers all come from the
        artifact store. Subscriptions are not persisted — re-subscribe.
        """
        from ..streaming.session import StreamingSession

        return StreamingSession.resume(path)

    # ------------------------------------------------------------------
    def query(self) -> "Query":
        """Start building a query against this session (fluent API)."""
        from .query import Query

        return Query(session=self)

    def execute(self, plan: "QueryPlan") -> "QueryReport":
        """Run a compiled plan against this session's cached Phase 1."""
        from .executor import QueryExecutor

        return QueryExecutor(self).execute(plan)

    def execute_many(
        self,
        plans: "Sequence[QueryPlan]",
        *,
        workers: Optional[int] = None,
    ) -> "List[QueryReport]":
        """Run a sweep of plans, fanning across a process pool.

        Phase 1 is built once per configuration in this process and
        shared with the workers (DESIGN.md §6); reports come back in
        plan order and are identical for every worker count.
        ``workers`` defaults to the ``REPRO_WORKERS`` environment
        variable, falling back to serial execution.
        """
        from .executor import QueryExecutor

        return QueryExecutor(self, workers=workers).execute_many(plans)

    # ------------------------------------------------------------------
    def resolved_unit_costs(self) -> Dict[str, float]:
        """The full ledger-key -> seconds map queries will charge."""
        return dict(CostModel(self._unit_costs).unit_costs)

    def phase1_cost_model(
        self, config: Optional[EverestConfig] = None
    ) -> CostModel:
        """The ledger Phase 1 under ``config`` charges (no Phase 1 run)."""
        config = config if config is not None else self.config
        key = phase1_key(config)
        entry = self._phase1_cache.get(key)
        if entry is not None:
            return entry.cost_model
        # Deterministic like every Phase-1 ledger: the build it will
        # receive charges from never runs wall-clock timers.
        return self._phase1_cost_models.setdefault(
            key, CostModel(self._unit_costs, wall_clock=False))

    def phase1(self, config: Optional[EverestConfig] = None) -> Phase1Entry:
        """The cached Phase 1 artifacts for ``config`` (runs on miss).

        A service-bound session (:meth:`bind_service`) delegates the
        build to the shared artifact layer — concurrent sessions over
        the same ``phase1_key`` block on one single-flight build — and
        pins the leased entry locally so later queries skip the store.
        """
        config = config if config is not None else self.config
        key = phase1_key(config)
        entry = self._phase1_cache.get(key)
        if entry is None:
            with trace_span("phase1", category="phase1") as p1_span:
                if self.artifacts is not None:
                    entry = self.artifacts.lease(self, config, key)
                    # A ledger handed out via phase1_cost_model() before
                    # this build was promised to receive Phase 1's
                    # charges; the shared build charged the store's
                    # ledger instead, so replay the (bit-identical,
                    # purely simulated) charges into the held reference
                    # exactly once.
                    pre = self._phase1_cost_models.pop(key, None)
                    if pre is not None and pre is not entry.cost_model:
                        pre.merge_from(entry.cost_model)
                else:
                    entry = build_phase1_entry(
                        self.video, self.scoring, self._unit_costs,
                        config,
                        cost_model=self.phase1_cost_model(config),
                    )
                if p1_span is not None:
                    p1_span.set(
                        video=self.video.name, udf=self.scoring.name,
                        shared=self.artifacts is not None,
                        sim_seconds_total=entry.cost_model.total_seconds(),
                        oracle_calls=entry.oracle_calls)
            self._phase1_cache[key] = entry
        return entry

    def bind_service(self, artifacts, score_cache=None) -> "Session":
        """Attach this session to a service's shared artifact layer.

        ``artifacts`` supplies single-flight Phase-1 builds (an object
        with ``lease(session, config, key)``); ``score_cache`` makes
        every executor confirm through the service-scope
        :class:`~repro.oracle.cache.ScoreCache`, so queries reuse
        frames other queries already cleaned. Returns ``self``.
        """
        self.artifacts = artifacts
        self.shared_score_cache = score_cache
        return self

    def adopt_phase1(
        self,
        entry: Phase1Entry,
        config: Optional[EverestConfig] = None,
    ) -> None:
        """Seed the Phase 1 cache with an externally built entry.

        This is how pool workers skip redundant CMDN training: the
        parent process builds (or fetches) the entry once, serializes
        it, and each worker adopts it into a fresh session before
        executing plans. The entry must have been built under the same
        ``(phase1, diff, seed)`` configuration it is adopted for.
        """
        config = config if config is not None else self.config
        self._phase1_cache[phase1_key(config)] = entry

    def phase1_cached(
        self,
        config: Optional[EverestConfig] = None,
        *,
        key: Optional[Phase1Key] = None,
    ) -> bool:
        """Whether this session already pins Phase-1 artifacts.

        Pass either a configuration (``None`` means the session
        config) or a precomputed ``key``. A pinned entry means a query
        under that configuration pays zero new Phase-1 cost — the
        warmness signal the cost optimizer orders by.
        """
        if key is None:
            key = phase1_key(config if config is not None else self.config)
        return key in self._phase1_cache

    @property
    def phase1_result(self) -> Phase1Result:
        """Phase 1 artifacts under the session config (runs on first use)."""
        return self.phase1().result

    @property
    def phase1_runs(self) -> int:
        """How many distinct Phase 1 builds this session has paid for."""
        return len(self._phase1_cache)

    def scan_seconds(self) -> float:
        """Simulated cost of scan-and-test with this UDF's oracle."""
        costs = self.resolved_unit_costs()
        per_frame = costs.get(self.scoring.cost_key, 0.0) + costs["decode"]
        return len(self.video) * per_frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(video={self.video.name!r}, "
            f"udf={self.scoring.name!r}, phase1_runs={self.phase1_runs})"
        )
