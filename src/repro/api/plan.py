"""Executable query plans.

A :class:`QueryPlan` is the compiled, inspectable form of a fluent
:class:`~repro.api.query.Query`: a frozen record of everything the
executor needs — relation source, cleaning strategy, oracle budget and
unit costs — with none of the machinery. Compiling a plan is cheap and
side-effect free (Phase 1 does not run until the plan is executed), so
callers can ``explain()`` a sweep before paying for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import EverestConfig
from ..core.windows import num_windows


@dataclass(frozen=True)
class QueryPlan:
    """A compiled Top-K query, ready for a :class:`QueryExecutor`.

    ``mode`` is ``"frames"`` or ``"windows"``; window plans carry the
    resolved ``window_size`` / ``window_step`` (the builder fills the
    paper's default step, UDF step / 4, when the user gave none).
    """

    video_name: str
    udf_name: str
    num_frames: int
    mode: str  # "frames" | "windows"
    k: int
    thres: float
    window_size: Optional[int]
    window_step: Optional[float]
    #: Resolved oracle-invocation cap for Phase 2 (None = unbounded).
    oracle_budget: Optional[int]
    #: The engine configuration the executor will run under.
    config: EverestConfig
    #: Resolved per-unit simulated latencies (ledger key -> seconds).
    unit_costs: Dict[str, float]
    #: Skip wall-clock measurement of the algorithmic stages so the
    #: report depends only on the plan and the Phase 1 artifacts —
    #: required for reports to be bit-identical across pool workers.
    deterministic_timing: bool = False
    #: Sliding-window restriction: disjoint, ascending ``[lo, hi)``
    #: frame-id ranges the cleaner may see (None = whole relation).
    #: One range for single-video windows; one per member (in global
    #: corpus ids) for federated windows. Frames-mode only.
    frame_ranges: Optional[Tuple[Tuple[int, int], ...]] = None
    #: The sliding-window length that produced ``frame_ranges`` (for
    #: ``explain()``; None when the plan is not windowed).
    window_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        # Builder validation should make these unreachable; they guard
        # plans constructed by hand.
        if self.mode not in ("frames", "windows"):
            raise ValueError(f"unknown plan mode {self.mode!r}")
        if self.mode == "windows" and not self.window_size:
            raise ValueError("window plans require window_size")
        if self.mode == "windows" and self.window_step is None:
            raise ValueError("window plans require window_step")
        if self.frame_ranges is not None:
            if self.mode != "frames":
                raise ValueError(
                    "frame_ranges (sliding windows) require frames mode")
            if not self.frame_ranges:
                raise ValueError("frame_ranges must be None or non-empty")
            prev_hi = 0
            for lo, hi in self.frame_ranges:
                if not (0 <= lo < hi <= self.num_frames):
                    raise ValueError(
                        f"frame range [{lo}, {hi}) out of bounds for "
                        f"{self.num_frames} frames")
                if lo < prev_hi:
                    raise ValueError(
                        "frame ranges must be ascending and disjoint")
                prev_hi = hi

    # ------------------------------------------------------------------
    @property
    def relation_source(self) -> str:
        """Human-readable description of the uncertain relation."""
        if self.mode == "windows":
            return (
                f"tumbling-windows(size={self.window_size}, "
                f"step={self.window_step:g})"
            )
        if self.frame_ranges is not None:
            spans = ", ".join(f"[{lo}, {hi})" for lo, hi in self.frame_ranges)
            window = (
                f"{self.window_seconds:g}s" if self.window_seconds is not None
                else "?")
            return f"uncertain-frames(D0) | window({window}: {spans})"
        return "uncertain-frames(D0)"

    @property
    def cleaner_description(self) -> str:
        phase2 = self.config.phase2
        budget = "unbounded" if self.oracle_budget is None \
            else str(self.oracle_budget)
        confirm = (
            f"window-sample({phase2.window_sample_fraction:.0%})"
            if self.mode == "windows" else "oracle-confirm"
        )
        return (
            f"TopKCleaner(batch={phase2.batch_size}, budget={budget}, "
            f"confirm={confirm})"
        )

    @property
    def num_tuples(self) -> int:
        """Tuples in the relation the cleaner will see.

        Exact for window plans; an upper bound for frame plans (the
        difference detector may discard frames, and Phase 1 has not
        run at compile time).
        """
        if self.mode == "windows":
            assert self.window_size is not None
            return num_windows(self.num_frames, self.window_size)
        if self.frame_ranges is not None:
            return sum(hi - lo for lo, hi in self.frame_ranges)
        return self.num_frames

    def _oracle_costs(self) -> Tuple[float, float]:
        confirm = self.unit_costs.get("oracle_confirm", 0.0)
        decode = self.unit_costs.get("decode", 0.0)
        return confirm, decode

    def explain(self, *, estimate=None) -> str:
        """Render the plan as an indented, human-readable tree.

        ``estimate`` optionally attaches an optimizer
        :class:`~repro.optimizer.estimator.CostPrediction` (from
        ``QueryService.plan_workload`` or ``CostEstimator.predict``):
        the rendered tree then carries the predicted Phase-1 tier,
        expected confirmations, chosen lane and physical cost.
        """
        phase1 = self.config.phase1
        labels = phase1.train_sample_size(self.num_frames)
        holdout = phase1.holdout_sample_size(self.num_frames)
        confirm, decode = self._oracle_costs()
        kind = "windows" if self.mode == "windows" else "frames"
        # Frame relations keep only diff-detector-retained frames, a
        # count unknown until Phase 1 runs — report an upper bound.
        bound = "" if self.mode == "windows" else "<= "
        lines = [
            f"QueryPlan: top-{self.k} {kind}, guarantee >= {self.thres:g}",
            f"  source   : video '{self.video_name}' "
            f"({self.num_frames:,} frames) · udf '{self.udf_name}'",
            f"  relation : {self.relation_source} "
            f"[{bound}{self.num_tuples:,} tuples]",
            f"  phase1   : label {labels:,}+{holdout:,} frames, "
            f"train CMDN grid x{len(phase1.cmdn_grid)}, "
            f"diff-detect(mse<{self.config.diff.mse_threshold:g}) "
            f"[cached per session]",
            f"  phase2   : {self.cleaner_description}",
            f"  costs    : oracle={confirm:g}s/frame "
            f"decode={decode:g}s/frame (simulated)",
            f"  seed     : {self.config.seed}",
        ]
        if estimate is not None:
            lines.append(f"  optimizer: {estimate.describe()}")
        return "\n".join(lines)
