"""Plan execution: Phase 2 cleaning against a session's cached Phase 1.

:class:`QueryExecutor` is the only place that turns a
:class:`~repro.api.plan.QueryPlan` into work: it fetches (or builds)
the session's Phase 1 artifacts, materializes the frame- or
window-level uncertain relation, runs the cleaning loop with a fresh
cost ledger, and assembles the :class:`~repro.core.result.QueryReport`.
Each execution clones the cached relation, so a query never perturbs
its session and per-query Table 8 breakdowns stay exact.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.cleaner import TopKCleaner
from ..core.result import PhaseBreakdown, QueryReport
from ..core.windows import WindowCleaner, build_window_relation
from ..errors import QueryError
from ..oracle.base import Oracle
from ..oracle.cost import CostModel
from .plan import QueryPlan
from .session import Phase1Entry, Session


class QueryExecutor:
    """Executes compiled plans against one session."""

    def __init__(self, session: Session):
        self.session = session

    def execute(self, plan: QueryPlan) -> QueryReport:
        session = self.session
        if (plan.video_name != session.video.name
                or plan.num_frames != len(session.video)
                or plan.udf_name != session.scoring.name):
            raise QueryError(
                f"plan targets ({plan.video_name!r}, {plan.num_frames} "
                f"frames, {plan.udf_name!r}) but the session opened "
                f"({session.video.name!r}, {len(session.video)} frames, "
                f"{session.scoring.name!r})")
        entry = session.phase1(plan.config)
        if plan.mode == "windows":
            return self._run_windows(plan, entry)
        return self._run_frames(plan, entry)

    # ------------------------------------------------------------------
    def _phase2_context(self, plan: QueryPlan):
        """A fresh per-query cost ledger plus the confirming oracle."""
        phase2_cost = CostModel(plan.unit_costs)
        confirm_oracle = Oracle(
            self.session.scoring,
            phase2_cost,
            cost_key="oracle_confirm",
            budget=plan.oracle_budget,
        )
        return phase2_cost, confirm_oracle

    def _clean(
        self, plan, entry, relation, clean_fn, phase2_cost, confirm_oracle
    ) -> QueryReport:
        """The shared Phase 2 tail: cleaning loop + report assembly."""
        cleaner = TopKCleaner(
            relation,
            clean_fn,
            plan.config.phase2,
            cost_model=phase2_cost,
        )
        outcome = cleaner.run(plan.k, plan.thres)
        return self._report(
            plan, outcome, entry, phase2_cost,
            oracle_calls=entry.oracle_calls + confirm_oracle.calls,
            num_tuples=len(relation),
        )

    def _run_frames(
        self, plan: QueryPlan, entry: Phase1Entry
    ) -> QueryReport:
        session = self.session
        phase2_cost, confirm_oracle = self._phase2_context(plan)
        relation = entry.result.relation.copy()

        def clean_fn(ids: Sequence[int]) -> np.ndarray:
            phase2_cost.charge("decode", len(ids))
            return confirm_oracle.score(session.video, ids)

        return self._clean(
            plan, entry, relation, clean_fn, phase2_cost, confirm_oracle)

    def _run_windows(
        self, plan: QueryPlan, entry: Phase1Entry
    ) -> QueryReport:
        session = self.session
        phase1 = entry.result
        assert plan.window_size is not None and plan.window_step is not None
        relation = build_window_relation(
            phase1.mixtures,
            phase1.diff_result.retained,
            phase1.diff_result,
            window_size=plan.window_size,
            floor=session.scoring.score_floor,
            step=plan.window_step,
            truncate_sigmas=plan.config.phase1.truncate_sigmas,
        )
        phase2_cost, confirm_oracle = self._phase2_context(plan)
        clean_fn = WindowCleaner(
            video=session.video,
            oracle=confirm_oracle,
            window_size=plan.window_size,
            sample_fraction=plan.config.phase2.window_sample_fraction,
            seed=plan.config.seed,
            cost_model=phase2_cost,
        )
        return self._clean(
            plan, entry, relation, clean_fn, phase2_cost, confirm_oracle)

    # ------------------------------------------------------------------
    def _breakdown(
        self, entry: Phase1Entry, phase2_cost: CostModel
    ) -> PhaseBreakdown:
        p1 = entry.cost_model
        return PhaseBreakdown(
            label_sample=p1.seconds("oracle_label"),
            cmdn_training=p1.seconds("cmdn_train"),
            populate_d0=(
                p1.seconds("cmdn_infer")
                + p1.seconds("diff_detect")
                + p1.seconds("decode")
            ),
            select_candidate=phase2_cost.seconds("select_candidate"),
            confirm_oracle=(
                phase2_cost.seconds("oracle_confirm")
                + phase2_cost.seconds("decode")
            ),
        )

    def _report(
        self,
        plan: QueryPlan,
        outcome,
        entry: Phase1Entry,
        phase2_cost: CostModel,
        *,
        oracle_calls: int,
        num_tuples: int,
    ) -> QueryReport:
        session = self.session
        phase1 = entry.result
        best = phase1.grid_result.best_history
        return QueryReport(
            video_name=session.video.name,
            udf_name=session.scoring.name,
            k=plan.k,
            thres=plan.thres,
            window_size=plan.window_size,
            num_frames=len(session.video),
            answer_ids=outcome.answer_ids,
            answer_scores=outcome.answer_scores,
            confidence=outcome.confidence,
            iterations=outcome.iterations,
            cleaned=outcome.cleaned,
            num_tuples=num_tuples,
            num_retained=phase1.diff_result.num_retained,
            oracle_calls=oracle_calls,
            breakdown=self._breakdown(entry, phase2_cost),
            scan_seconds=session.scan_seconds(),
            proxy_hyperparameters=best.hyperparameters,
            holdout_nll=best.holdout_nll,
            confidence_trace=outcome.confidence_trace,
            selection_examine_fraction=(
                outcome.selection_stats.examine_fraction
                if outcome.selection_stats else 0.0
            ),
        )
