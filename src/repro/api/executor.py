"""Plan execution: Phase 2 cleaning against a session's cached Phase 1.

:class:`QueryExecutor` is the only place that turns a
:class:`~repro.api.plan.QueryPlan` into work: it fetches (or builds)
the session's Phase 1 artifacts, materializes the frame- or
window-level uncertain relation, runs the cleaning loop with a fresh
cost ledger, and assembles the :class:`~repro.core.result.QueryReport`.
Each execution clones the cached relation, so a query never perturbs
its session and per-query Table 8 breakdowns stay exact.

Constructed with ``workers > 1``, the executor fans :meth:`execute_many`
across a process pool (DESIGN.md §6): Phase 1 is built once per
configuration in this process and shipped to workers that run only
Phase 2, with reports returned in plan order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.cleaner import TopKCleaner
from ..core.result import PhaseBreakdown, QueryReport
from ..core.uncertain import restrict_relation
from ..core.windows import WindowCleaner, build_window_relation
from ..errors import QueryError
from ..oracle.base import Oracle
from ..oracle.cost import CostModel
from ..trace import span as trace_span
from .plan import QueryPlan
from .session import Phase1Entry, Session


@dataclass
class ExecutionDetail:
    """A report plus the per-query Phase 2 ledger that produced it.

    The ledger is what parallel sweeps merge (see
    :meth:`~repro.oracle.cost.CostModel.merge_from`): it contains only
    this query's Phase 2 charges, never the shared Phase 1 ledger.
    ``fresh_confirm_calls`` is the physical (cache-miss) confirmation
    count when the executor ran with a shared score cache, ``None``
    otherwise — the ledger always carries the full charges either way.
    """

    report: QueryReport
    phase2_cost: CostModel
    fresh_confirm_calls: Optional[int] = None


class QueryExecutor:
    """Executes compiled plans against one session.

    ``workers`` sets the default fan-out of :meth:`execute_many`
    (``None`` resolves through ``REPRO_WORKERS``, defaulting to
    serial). Single-plan :meth:`execute` always runs in-process.

    ``score_cache`` — explicit, or inherited from a service-bound
    session (:attr:`Session.shared_score_cache`) — swaps the confirming
    oracle for a :class:`~repro.oracle.cache.CachingOracle`: ledgers
    and reports are unchanged, but frames another query already cleaned
    are not physically re-scored. This is the cross-query sharing hook
    the service layer builds on (DESIGN.md §8).
    """

    def __init__(
        self,
        session: Session,
        *,
        workers: Optional[int] = None,
        score_cache=None,
    ):
        from ..parallel.pool import resolve_workers

        self.session = session
        self.workers = resolve_workers(workers)
        if score_cache is None:
            score_cache = getattr(session, "shared_score_cache", None)
        self.score_cache = score_cache
        #: The confirming oracle behind the most recent execution —
        #: how callers (streaming, service) read cache-miss counts.
        self.last_confirm_oracle: Optional[Oracle] = None

    def execute(self, plan: QueryPlan) -> QueryReport:
        return self.execute_detailed(plan).report

    def execute_many(
        self,
        plans: Sequence[QueryPlan],
        *,
        workers: Optional[int] = None,
    ) -> List[QueryReport]:
        """Execute a sweep of plans, in plan order.

        With more than one worker the sweep runs on a process pool via
        :class:`~repro.parallel.runner.ParallelRunner` (deterministic
        timing is forced so worker count cannot change the reports);
        otherwise plans execute serially in-process.
        """
        from ..parallel.runner import ParallelRunner

        count = self.workers if workers is None else workers
        runner = ParallelRunner(count)
        return runner.run_sweep(self.session, plans)

    def execute_detailed(self, plan: QueryPlan) -> ExecutionDetail:
        session = self.session
        if (plan.video_name != session.video.name
                or plan.num_frames != len(session.video)
                or plan.udf_name != session.scoring.name):
            raise QueryError(
                f"plan targets ({plan.video_name!r}, {plan.num_frames} "
                f"frames, {plan.udf_name!r}) but the session opened "
                f"({session.video.name!r}, {len(session.video)} frames, "
                f"{session.scoring.name!r})")
        entry = session.phase1(plan.config)
        if plan.mode == "windows":
            return self._run_windows(plan, entry)
        return self._run_frames(plan, entry)

    # ------------------------------------------------------------------
    def _phase2_context(self, plan: QueryPlan):
        """A fresh per-query cost ledger plus the confirming oracle."""
        phase2_cost = CostModel(
            plan.unit_costs, wall_clock=not plan.deterministic_timing)
        confirm_oracle = self._confirm_oracle(plan, phase2_cost)
        self.last_confirm_oracle = confirm_oracle
        return phase2_cost, confirm_oracle

    def _confirm_oracle(
        self, plan: QueryPlan, phase2_cost: CostModel
    ) -> Oracle:
        """The Phase 2 confirming oracle (cache-backed when shared)."""
        if self.score_cache is not None:
            from ..oracle.cache import CachingOracle

            return CachingOracle(
                self.session.scoring,
                phase2_cost,
                cache=self.score_cache,
                cost_key="oracle_confirm",
                budget=plan.oracle_budget,
            )
        return Oracle(
            self.session.scoring,
            phase2_cost,
            cost_key="oracle_confirm",
            budget=plan.oracle_budget,
        )

    def _clean(
        self, plan, entry, relation, clean_fn, phase2_cost, confirm_oracle
    ) -> ExecutionDetail:
        """The shared Phase 2 tail: cleaning loop + report assembly."""
        cleaner = TopKCleaner(
            relation,
            clean_fn,
            plan.config.phase2,
            cost_model=phase2_cost,
        )
        with trace_span(
                "clean_loop", category="phase2", ledger=phase2_cost,
                k=plan.k, thres=plan.thres,
                mode=plan.mode) as loop_span:
            outcome = cleaner.run(plan.k, plan.thres)
            if loop_span is not None:
                loop_span.set(
                    iterations=outcome.iterations,
                    cleaned=outcome.cleaned,
                    confidence=outcome.confidence,
                    confirm_calls=confirm_oracle.calls,
                    fresh_confirm_calls=getattr(
                        confirm_oracle, "fresh_calls", None))
        report = self._report(
            plan, outcome, entry, phase2_cost,
            oracle_calls=entry.oracle_calls + confirm_oracle.calls,
            num_tuples=len(relation),
        )
        return ExecutionDetail(
            report=report,
            phase2_cost=phase2_cost,
            fresh_confirm_calls=getattr(confirm_oracle, "fresh_calls", None),
        )

    def _run_frames(
        self, plan: QueryPlan, entry: Phase1Entry
    ) -> ExecutionDetail:
        session = self.session
        phase2_cost, confirm_oracle = self._phase2_context(plan)
        if plan.frame_ranges is not None:
            # Sliding-window restriction: mask the cached full relation
            # down to the window's rows on the same grid. A windowed
            # maintainer's relation is already window-scoped, in which
            # case this is the identity mask (still a fresh copy —
            # cleaning mutates in place).
            with trace_span(
                    "window_slide", category="phase2",
                    window_seconds=plan.window_seconds,
                    num_ranges=len(plan.frame_ranges)) as slide_span:
                relation = restrict_relation(
                    entry.result.relation, plan.frame_ranges)
                if slide_span is not None:
                    slide_span.set(num_tuples=len(relation))
        else:
            relation = entry.result.relation.copy()

        def clean_fn(ids: Sequence[int]) -> np.ndarray:
            phase2_cost.charge("decode", len(ids))
            return confirm_oracle.score(session.video, ids)

        return self._clean(
            plan, entry, relation, clean_fn, phase2_cost, confirm_oracle)

    def _run_windows(
        self, plan: QueryPlan, entry: Phase1Entry
    ) -> ExecutionDetail:
        session = self.session
        phase1 = entry.result
        assert plan.window_size is not None and plan.window_step is not None
        with trace_span(
                "window_relation", category="phase2",
                window_size=plan.window_size, window_step=plan.window_step):
            relation = build_window_relation(
                phase1.mixtures,
                phase1.diff_result.retained,
                phase1.diff_result,
                window_size=plan.window_size,
                floor=session.scoring.score_floor,
                step=plan.window_step,
                truncate_sigmas=plan.config.phase1.truncate_sigmas,
            )
        phase2_cost, confirm_oracle = self._phase2_context(plan)
        clean_fn = WindowCleaner(
            video=session.video,
            oracle=confirm_oracle,
            window_size=plan.window_size,
            sample_fraction=plan.config.phase2.window_sample_fraction,
            seed=plan.config.seed,
            cost_model=phase2_cost,
        )
        return self._clean(
            plan, entry, relation, clean_fn, phase2_cost, confirm_oracle)

    # ------------------------------------------------------------------
    def _breakdown(
        self, entry: Phase1Entry, phase2_cost: CostModel
    ) -> PhaseBreakdown:
        p1 = entry.cost_model
        return PhaseBreakdown(
            label_sample=p1.seconds("oracle_label"),
            cmdn_training=p1.seconds("cmdn_train"),
            populate_d0=(
                p1.seconds("cmdn_infer")
                + p1.seconds("diff_detect")
                + p1.seconds("decode")
            ),
            select_candidate=phase2_cost.seconds("select_candidate"),
            confirm_oracle=(
                phase2_cost.seconds("oracle_confirm")
                + phase2_cost.seconds("decode")
            ),
        )

    def _report(
        self,
        plan: QueryPlan,
        outcome,
        entry: Phase1Entry,
        phase2_cost: CostModel,
        *,
        oracle_calls: int,
        num_tuples: int,
    ) -> QueryReport:
        session = self.session
        phase1 = entry.result
        best = phase1.grid_result.best_history
        return QueryReport(
            video_name=session.video.name,
            udf_name=session.scoring.name,
            k=plan.k,
            thres=plan.thres,
            window_size=plan.window_size,
            num_frames=len(session.video),
            answer_ids=outcome.answer_ids,
            answer_scores=outcome.answer_scores,
            confidence=outcome.confidence,
            iterations=outcome.iterations,
            cleaned=outcome.cleaned,
            num_tuples=num_tuples,
            num_retained=phase1.diff_result.num_retained,
            oracle_calls=oracle_calls,
            breakdown=self._breakdown(entry, phase2_cost),
            scan_seconds=session.scan_seconds(),
            proxy_hyperparameters=best.hyperparameters,
            holdout_nll=best.holdout_nll,
            confidence_trace=outcome.confidence_trace,
            selection_examine_fraction=(
                outcome.selection_stats.examine_fraction
                if outcome.selection_stats else 0.0
            ),
        )
