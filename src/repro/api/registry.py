"""Name registries: strings → scoring functions and videos.

Lets examples, scripts and config files drive the query API without
importing factories: ``open_session("daxi-old-street",
"count[person]")``. UDF specs are ``"name"`` or ``"name[arg]"`` (the
bracket argument is the object label for counting UDFs). Video names
resolve against the Table 7 dataset registry first, then against the
registered synthetic families.

Both registries are extensible — ``register_udf`` / ``register_video``
add new names — which is how later operators and datasets plug in
without touching the callers.
"""

from __future__ import annotations

import dataclasses
import numbers
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import EverestConfig
from ..errors import ConfigurationError
from ..oracle.base import ScoringFunction
from ..oracle.depth import tailgating_udf
from ..oracle.detector import counting_udf
from ..oracle.sentiment import sentiment_udf
from ..video.datasets import DATASETS, build_dataset
from ..video.synthetic import (
    DashcamVideo,
    SentimentVideo,
    SyntheticVideo,
    TrafficVideo,
)
from .session import Session

#: A UDF factory takes the optional bracket argument from the spec.
UdfFactory = Callable[..., ScoringFunction]
#: A video factory takes builder keyword arguments (num_frames, seed…).
VideoFactory = Callable[..., SyntheticVideo]

_UDF_SPEC = re.compile(r"^(?P<name>[\w-]+)(?:\[(?P<arg>[^\[\]]+)\])?$")
_UDF_NAME = re.compile(r"^[\w-]+$")
#: Corpus specs: ``<udf-spec>@{member,member,...}``. The UDF half is
#: validated by :func:`parse_udf_spec`; member names share the UDF /
#: video registry name grammar (one pattern, not two copies to drift).
_CORPUS_SPEC = re.compile(
    r"^(?P<udf>[^@{}]+)@\{(?P<members>[^{}]*)\}$")
_MEMBER_NAME = _UDF_NAME

_udf_registry: Dict[str, UdfFactory] = {}
_video_registry: Dict[str, VideoFactory] = {}


def register_udf(name: str, factory: UdfFactory) -> None:
    """Register a scoring-function factory under ``name``.

    The name must be resolvable by :func:`resolve_udf`'s spec grammar
    (letters, digits, underscores, dashes).
    """
    if not _UDF_NAME.match(name or ""):
        raise ConfigurationError(
            f"invalid UDF registry name {name!r}; names must match "
            f"[A-Za-z0-9_-]+ so 'name[arg]' specs can resolve them")
    _udf_registry[name] = factory


def register_video(name: str, factory: VideoFactory) -> None:
    """Register a synthetic-video family under ``name``.

    Table 7 dataset names are reserved: :func:`resolve_video` checks
    them first, so shadowing one would silently no-op.
    """
    if not name:
        raise ConfigurationError("video registry name must be non-empty")
    if name in DATASETS:
        raise ConfigurationError(
            f"{name!r} is a built-in Table 7 dataset and cannot be "
            f"re-registered")
    _video_registry[name] = factory


def list_udfs() -> List[str]:
    """Registered UDF family names (spec syntax: ``name[arg]``)."""
    return sorted(_udf_registry)


def list_videos() -> List[str]:
    """All resolvable video names: Table 7 datasets plus families."""
    return sorted(set(DATASETS) | set(_video_registry))


def parse_udf_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split a UDF spec into ``(name, arg)`` without resolving it.

    Raises :class:`~repro.errors.ConfigurationError` (a
    :class:`ValueError`) on anything that is not ``'name'`` or
    ``'name[arg]'`` — including non-string input, empty specs, nested
    or unbalanced brackets, and empty bracket arguments.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"UDF spec must be a string, got {type(spec).__name__}")
    match = _UDF_SPEC.match(spec)
    if match is None:
        raise ConfigurationError(
            f"malformed UDF spec {spec!r}; expected 'name' or 'name[arg]'")
    return match.group("name"), match.group("arg")


def format_udf_spec(name: str, arg: Optional[str] = None) -> str:
    """The canonical spec string for ``(name, arg)``.

    Inverse of :func:`parse_udf_spec` for every valid pair:
    ``parse_udf_spec(format_udf_spec(name, arg)) == (name, arg)``.
    Raises :class:`~repro.errors.ConfigurationError` when the pair
    cannot round-trip (bad name characters, ``]`` inside the arg).
    """
    spec = name if arg is None else f"{name}[{arg}]"
    parsed_name, parsed_arg = parse_udf_spec(spec)
    if (parsed_name, parsed_arg) != (name, arg):
        raise ConfigurationError(
            f"({name!r}, {arg!r}) does not round-trip through "
            f"{spec!r}; use a plain [A-Za-z0-9_-]+ name")
    return spec


#: Backwards-compatible alias for the pre-service private name.
_parse_udf_spec = parse_udf_spec


def parse_window_seconds(text: str, spec: Optional[str] = None) -> float:
    """Parse the value of a ``?window=`` suffix into seconds.

    Raises :class:`~repro.errors.ConfigurationError` (a
    :class:`ValueError`) on anything that is not a positive finite
    number — never a bare ``float`` conversion error.
    """
    context = f" in query spec {spec!r}" if spec is not None else ""
    if not isinstance(text, str) or not text or text.strip() != text:
        raise ConfigurationError(
            f"malformed window value {text!r}{context}; expected a "
            f"positive number of seconds")
    try:
        value = float(text)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"malformed window value {text!r}{context}; expected a "
            f"positive number of seconds") from error
    if not value > 0.0 or not value < float("inf"):
        raise ConfigurationError(
            f"window value {text!r}{context} must be a positive finite "
            f"number of seconds")
    return value


def format_window_seconds(seconds) -> str:
    """The canonical ``?window=`` value for ``seconds``.

    Integral windows render without a decimal point (``"300"``), the
    rest through ``repr`` — both parse back to exactly the same float,
    so ``parse_window_seconds(format_window_seconds(w)) == w``.
    """
    if isinstance(seconds, bool) or not isinstance(seconds, numbers.Real) \
            or not float(seconds) > 0.0 \
            or not float(seconds) < float("inf"):
        raise ConfigurationError(
            f"window seconds must be a positive finite number, "
            f"got {seconds!r}")
    value = float(seconds)
    return str(int(value)) if value == int(value) else repr(value)


def split_window_param(spec: str) -> Tuple[str, Optional[float]]:
    """Split an optional ``?window=<seconds>`` suffix off a spec.

    Returns ``(base_spec, window_seconds_or_None)``. Only the *last*
    ``?`` can introduce the suffix, and only when followed by
    ``window=`` — a stray ``?`` anywhere else is left in the base spec
    for the name grammar to reject (names cannot contain ``?``), so
    malformed specs still fail with a clean error.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"query spec must be a string, got {type(spec).__name__}")
    head, sep, tail = spec.rpartition("?")
    if not sep or not tail.startswith("window="):
        return spec, None
    value = tail[len("window="):]
    return head, parse_window_seconds(value, spec)


def parse_corpus_spec(spec: str) -> Tuple[str, Tuple[str, ...]]:
    """Split ``"count[car]@{a,b}"`` into ``(udf_spec, member_names)``.

    Whitespace around member names (``"count[car]@{a, b}"``) is
    tolerated and normalized away — hand-typed wire requests get to
    breathe — but whitespace *inside* a name is still malformed.
    Raises :class:`~repro.errors.ConfigurationError` (a
    :class:`ValueError`) on anything outside the grammar: non-string
    input, a malformed UDF half, missing or nested braces, empty
    member lists, empty or ill-formed member names, and duplicate
    members.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"corpus spec must be a string, got {type(spec).__name__}")
    match = _CORPUS_SPEC.match(spec)
    if match is None:
        raise ConfigurationError(
            f"malformed corpus spec {spec!r}; expected "
            f"'udf@{{member,member,...}}'")
    udf_spec = match.group("udf")
    parse_udf_spec(udf_spec)  # validates; raises ConfigurationError
    raw = match.group("members")
    # Whitespace around commas/braces is wire-format noise
    # (``count[car]@{a, b}``); strip it per member. Whitespace *inside*
    # a name still fails the member grammar below.
    members = [m.strip() for m in raw.split(",")] if raw.strip() else []
    if not members:
        raise ConfigurationError(
            f"corpus spec {spec!r} names no members")
    for member in members:
        if not _MEMBER_NAME.match(member):
            raise ConfigurationError(
                f"invalid corpus member name {member!r} in {spec!r}; "
                f"names must match [A-Za-z0-9_-]+")
    if len(set(members)) != len(members):
        raise ConfigurationError(
            f"corpus spec {spec!r} repeats a member name")
    return udf_spec, tuple(members)


def format_corpus_spec(udf_spec: str, members) -> str:
    """The canonical spec string for ``(udf_spec, members)``.

    Inverse of :func:`parse_corpus_spec` for every valid pair; raises
    :class:`~repro.errors.ConfigurationError` when the pair cannot
    round-trip (malformed UDF half, bad member characters, duplicate
    or empty member lists).
    """
    members = tuple(members)
    spec = f"{udf_spec}@{{{','.join(members)}}}"
    parsed_udf, parsed_members = parse_corpus_spec(spec)
    if (parsed_udf, parsed_members) != (udf_spec, members):
        raise ConfigurationError(
            f"({udf_spec!r}, {members!r}) does not round-trip "
            f"through {spec!r}")
    return spec


@dataclass(frozen=True)
class QuerySpec:
    """A parsed wire-format query target (DESIGN.md §10).

    The gateway's one-string addressing scheme: either the session
    form ``"count[car]/taipei-bus"`` (UDF spec + video name) or the
    corpus form ``"count[car]@{a,b}"`` (UDF spec + member list).
    Exactly one of ``video`` / ``members`` is set. Either form may
    carry a sliding-window suffix: ``"count[car]/traffic?window=300"``
    (seconds, DESIGN.md §13).
    """

    udf: str
    video: Optional[str] = None
    members: Tuple[str, ...] = ()
    window_seconds: Optional[float] = None

    @property
    def kind(self) -> str:
        return "corpus" if self.members else "video"

    def without_window(self) -> "QuerySpec":
        """This target with the window suffix dropped (cache keys:
        sessions are shared across windows of the same footage)."""
        if self.window_seconds is None:
            return self
        return dataclasses.replace(self, window_seconds=None)

    def canonical(self) -> str:
        """The canonical wire string (see :func:`format_query_spec`)."""
        if self.members:
            spec = format_corpus_spec(self.udf, self.members)
        else:
            spec = f"{self.udf}/{self.video}"
        if self.window_seconds is not None:
            spec += f"?window={format_window_seconds(self.window_seconds)}"
        parsed = parse_query_spec(spec)
        if parsed != self:
            raise ConfigurationError(
                f"{self!r} does not round-trip through {spec!r}")
        return spec


def parse_query_spec(spec: str) -> QuerySpec:
    """Parse a wire query spec into its :class:`QuerySpec`.

    ``"count[car]/taipei-bus"`` names one video (the half after the
    *last* slash — UDF bracket arguments may themselves contain
    slashes); ``"count[car]@{a,b}"`` names a corpus (whitespace inside
    the member list is normalized away). A trailing
    ``?window=<seconds>`` on either form sets the sliding window.
    Raises :class:`~repro.errors.ConfigurationError` (a
    :class:`ValueError`) on anything outside the grammar.
    """
    base, window = split_window_param(spec)
    if _CORPUS_SPEC.match(base):
        udf_spec, members = parse_corpus_spec(base)
        return QuerySpec(
            udf=udf_spec, members=members, window_seconds=window)
    if "/" in base:
        udf_spec, video = base.rsplit("/", 1)
        parse_udf_spec(udf_spec)  # validates; raises ConfigurationError
        if not _MEMBER_NAME.match(video):
            raise ConfigurationError(
                f"invalid video name {video!r} in query spec {spec!r}; "
                f"names must match [A-Za-z0-9_-]+")
        return QuerySpec(udf=udf_spec, video=video, window_seconds=window)
    raise ConfigurationError(
        f"malformed query spec {spec!r}; expected 'udf/video' or "
        f"'udf@{{member,member,...}}', optionally with a "
        f"'?window=<seconds>' suffix")


def format_query_spec(
    udf_spec: str,
    *,
    video: Optional[str] = None,
    members=None,
    window_seconds: Optional[float] = None,
) -> str:
    """The canonical wire string for a UDF plus one target.

    Inverse of :func:`parse_query_spec` for every valid combination;
    raises :class:`~repro.errors.ConfigurationError` when the parts
    cannot round-trip (both or neither target, bad names, bad window).
    """
    if (video is None) == (members is None):
        raise ConfigurationError(
            "format_query_spec needs exactly one of video= / members=")
    if members is not None:
        return QuerySpec(
            udf=udf_spec, members=tuple(members),
            window_seconds=window_seconds).canonical()
    return QuerySpec(
        udf=udf_spec, video=video,
        window_seconds=window_seconds).canonical()


def resolve_query_spec(
    spec: str,
    *,
    config: Optional[EverestConfig] = None,
    unit_costs=None,
    **video_kwargs,
):
    """Build what a wire query spec names: a session or a corpus.

    The gateway's resolution path: ``"count[car]/traffic"`` opens (or
    the caller caches) a :class:`Session`, ``"count[car]@{a,b}"`` a
    :class:`~repro.corpus.corpus.VideoCorpus`. Extra keyword arguments
    forward to the video builder(s).
    """
    parsed = parse_query_spec(spec).without_window()
    if parsed.kind == "corpus":
        return resolve_corpus(
            parsed.canonical(), config=config, unit_costs=unit_costs,
            **video_kwargs)
    return Session.open(
        parsed.video, parsed.udf,
        config=config, unit_costs=unit_costs, **video_kwargs)


def resolve_corpus(
    spec: str,
    *,
    config: Optional[EverestConfig] = None,
    unit_costs=None,
    name: Optional[str] = None,
    **video_kwargs,
):
    """Build the :class:`~repro.corpus.corpus.VideoCorpus` a spec names.

    ``"count[car]@{taipei-bus,archie-day2}"`` opens one member session
    per named video (Table 7 datasets or registered families — extra
    keyword arguments forward to every member build) sharing the
    spec's UDF and the given configuration.
    """
    from ..corpus.corpus import VideoCorpus

    udf_spec, members = parse_corpus_spec(spec)
    return VideoCorpus.open(
        list(members), udf_spec,
        config=config, unit_costs=unit_costs, name=name, **video_kwargs)


#: Alias matching :func:`open_session`'s naming.
open_corpus = resolve_corpus


def resolve_udf(spec: str) -> ScoringFunction:
    """Build the scoring function a spec like ``"count[car]"`` names.

    Any failure — malformed spec, unknown name, or an argument the
    factory rejects — raises
    :class:`~repro.errors.ConfigurationError` (a :class:`ValueError`)
    with the offending spec in the message, never a bare conversion
    error from inside a factory.
    """
    name, arg = parse_udf_spec(spec)
    factory = _udf_registry.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown UDF {name!r}; registered: {', '.join(list_udfs())}")
    try:
        return factory(arg) if arg is not None else factory()
    except ConfigurationError:
        raise
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"invalid argument in UDF spec {spec!r}: {error}") from error


def resolve_video(name: str, **kwargs) -> SyntheticVideo:
    """Build the video a registered name refers to.

    Table 7 dataset names take :func:`~repro.video.datasets.build_dataset`
    keywords (``scale``, ``min_frames``…); family names take their
    constructor keywords (``num_frames``, ``seed``…).
    """
    if name in DATASETS:
        return build_dataset(name, **kwargs)
    factory = _video_registry.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown video {name!r}; known: {', '.join(list_videos())}")
    return factory(**kwargs)


def open_session(
    video,
    scoring,
    *,
    config: Optional[EverestConfig] = None,
    unit_costs: Optional[Dict[str, float]] = None,
    **video_kwargs,
) -> Session:
    """Open a :class:`Session`, accepting registry names or objects."""
    return Session.open(
        video, scoring,
        config=config, unit_costs=unit_costs, **video_kwargs)


# ----------------------------------------------------------------------
# Built-in registrations.

def _counting_factory(label: Optional[str] = None) -> ScoringFunction:
    return counting_udf(label if label is not None else "car")


def _tailgating_factory(arg: Optional[str] = None) -> ScoringFunction:
    if arg is not None:
        return tailgating_udf(max_distance=float(arg))
    return tailgating_udf()


def _sentiment_factory(arg: Optional[str] = None) -> ScoringFunction:
    if arg is not None:
        return sentiment_udf(quantization_step=float(arg))
    return sentiment_udf()


register_udf("count", _counting_factory)
register_udf("tailgating", _tailgating_factory)
register_udf("sentiment", _sentiment_factory)


def _family(cls, default_name: str) -> VideoFactory:
    def build(name: Optional[str] = None, num_frames: int = 5_000,
              **kwargs) -> SyntheticVideo:
        return cls(name or default_name, num_frames, **kwargs)
    return build


register_video("traffic", _family(TrafficVideo, "traffic"))
register_video("dashcam", _family(DashcamVideo, "dashcam"))
register_video("vlog", _family(SentimentVideo, "vlog"))
