"""The declarative query API: sessions, builders, plans, executors.

This is the user-facing layer of the reproduction (DESIGN.md §4)::

    session = open_session("daxi-old-street", "count[person]")
    report = (session.query()
              .windows(size=30)
              .topk(5)
              .guarantee(0.9)
              .run())

* :class:`Session` opens a (video, UDF) pair once and owns the Phase-1
  cache and cost ledgers; many queries share one relation build.
* :class:`Query` is the fluent, immutable builder; every clause
  validates eagerly and returns a new builder.
* :class:`QueryPlan` is the compiled, inspectable form
  (``query.explain()``), executed by :class:`QueryExecutor` into the
  standard :class:`~repro.core.result.QueryReport`.
* :mod:`~repro.api.registry` maps names to UDFs and videos so scripts
  can be driven by strings.

The legacy :class:`~repro.core.engine.EverestEngine` is a thin facade
over this layer.
"""

from .session import Phase1Entry, Session, phase1_key
from .query import Query
from .plan import QueryPlan
from .executor import ExecutionDetail, QueryExecutor
from .registry import (
    format_corpus_spec,
    list_udfs,
    list_videos,
    open_corpus,
    open_session,
    parse_corpus_spec,
    register_udf,
    register_video,
    resolve_corpus,
    resolve_udf,
    resolve_video,
)

__all__ = [
    "Session",
    "Phase1Entry",
    "phase1_key",
    "Query",
    "QueryPlan",
    "QueryExecutor",
    "ExecutionDetail",
    "open_session",
    "open_corpus",
    "register_udf",
    "register_video",
    "resolve_udf",
    "resolve_video",
    "resolve_corpus",
    "parse_corpus_spec",
    "format_corpus_spec",
    "list_udfs",
    "list_videos",
]
