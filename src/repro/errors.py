"""Exception hierarchy for the Everest reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the common failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied.

    Also a :class:`ValueError`: callers validating untrusted input
    (e.g. registry query strings like ``"count[car]"``) can catch the
    standard exception without importing the library hierarchy.
    """


class VideoError(ReproError):
    """A video source could not be generated, decoded, or addressed."""


class FrameIndexError(VideoError, IndexError):
    """A frame index fell outside the video's ``[0, num_frames)`` range."""

    def __init__(self, index: int, num_frames: int):
        super().__init__(
            f"frame index {index} out of range for video with "
            f"{num_frames} frames"
        )
        self.index = index
        self.num_frames = num_frames

    def __reduce__(self):
        # Custom __init__ signature: rebuild from (index, num_frames)
        # so the error survives a process-pool round trip intact.
        return (type(self), (self.index, self.num_frames))


class ModelError(ReproError):
    """A model could not be built, trained, or evaluated."""


class NotFittedError(ModelError):
    """A model was used for inference before it was trained."""


class ShapeError(ModelError, ValueError):
    """An array had an incompatible shape for the requested operation."""


class OracleError(ReproError):
    """The oracle (ground-truth scorer) failed or was misused."""


class OracleBudgetExceededError(OracleError):
    """An oracle-invocation budget was exhausted during cleaning."""

    def __init__(self, budget: int):
        super().__init__(f"oracle invocation budget of {budget} frames exhausted")
        self.budget = budget

    def __reduce__(self):
        # Custom __init__ signature: rebuild from the budget so pool
        # workers re-raise an identical error in the parent process.
        return (type(self), (self.budget,))


class ShardBudgetExceededError(OracleBudgetExceededError):
    """A per-shard oracle budget was exhausted during a corpus query.

    Carries the shard (member) name so federated failures are
    attributable; raised *before* any charge from the offending batch
    lands, in canonical shard order, so the error — like the ledgers —
    is deterministic.
    """

    def __init__(self, budget: int, member: str):
        OracleError.__init__(
            self,
            f"oracle invocation budget of {budget} frames exhausted "
            f"on corpus shard {member!r}")
        self.budget = budget
        self.member = member

    def __reduce__(self):
        return (type(self), (self.budget, self.member))


class CorpusError(ReproError):
    """A video corpus was malformed or its members were incompatible."""


class UncertainRelationError(ReproError):
    """An x-tuple or uncertain relation violated a structural invariant."""


class CheckpointError(ReproError):
    """A streaming checkpoint was missing, corrupt, or incompatible."""


class QueryError(ReproError):
    """A Top-K query was malformed or could not be answered."""


class ServiceError(ReproError):
    """The concurrent query service failed or was misused."""


class AdmissionError(ServiceError):
    """The service refused a submission (admission control).

    Raised when the pending-query queue is at ``max_pending`` — or, in
    subclasses, when a gateway quota trips; callers should back off
    and resubmit rather than queue without bound. ``reason`` is a
    stable machine-readable code (``"max_pending"``, ``"rate"``,
    ``"max_inflight"``) the gateway exports per tenant;
    ``retry_after`` is a backoff hint in seconds when one is known.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "max_pending",
        tenant: "str | None" = None,
        retry_after: "float | None" = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant
        self.retry_after = retry_after


class ServiceClosedError(ServiceError):
    """An operation was attempted on a closed query service."""


class GatewayError(ServiceError):
    """The HTTP/JSON gateway failed or was asked something malformed."""


class QuotaExceededError(GatewayError, AdmissionError):
    """A per-tenant gateway quota refused the request (HTTP 429).

    Raised by the token-bucket rate limiter (``reason="rate"``) or the
    max-inflight cap (``reason="max_inflight"``) before the request
    ever reaches the scheduler, so a quota rejection never perturbs
    service state or ledgers.
    """


class ResultExpiredError(GatewayError, KeyError):
    """An async query result outlived its TTL and was evicted.

    Also a :class:`KeyError`: the id no longer names anything. Maps to
    HTTP 410 — distinct from an id that never existed (404).
    """

    def __init__(self, result_id: str):
        # KeyError repr-quotes its args; format the message ourselves.
        super().__init__(
            f"result {result_id!r} expired and was evicted; "
            f"poll within the gateway's result TTL")
        self.result_id = result_id

    def __str__(self) -> str:
        return self.args[0]


class GuaranteeUnreachableError(QueryError):
    """The requested probabilistic guarantee cannot be met.

    Raised when every uncertain tuple has been cleaned and the resulting
    (fully certain) relation still cannot produce ``K`` results — e.g.
    the video has fewer distinct frames than ``K``.
    """
