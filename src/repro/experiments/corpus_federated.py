"""Federated corpus experiment: one top-k over a whole camera fleet.

Not a paper figure — the paper's engine answers one video at a time —
but the measurement that justifies the corpus layer (DESIGN.md §9):
open N Table-7 counting videos as one :class:`~repro.corpus.corpus
.VideoCorpus`, answer the *global* "top-k frames across every feed"
query federated, and report

* how the cross-shard selector allocated the oracle budget (confirms
  per shard — the shards whose frames plausibly contend for the global
  answer get the spend, quiet shards get none);
* the global answer's shard composition and confidence; and
* the simulated speedup over scanning the whole fleet.

The federated run is byte-identical to a single-video run over the
concatenated footage (``tests/test_corpus_equivalence.py``), so these
numbers are exactly the paper's machinery at fleet scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..corpus.corpus import VideoCorpus
from ..oracle.detector import counting_udf
from .runner import (
    ExperimentScale,
    config_for,
    counting_videos,
    format_table,
)


@dataclass
class ShardMeasurement:
    """One shard's slice of a federated query."""

    member: str
    frames: int
    confirms: int
    confirm_share: float
    answers: int


@dataclass
class CorpusMeasurement:
    """One federated corpus query, summarized."""

    members: List[ShardMeasurement]
    k: int
    thres: float
    total_frames: int
    confidence: float
    cleaned: int
    speedup: float
    simulated_seconds: float


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    num_members: int = 3,
    k: int = 10,
    thres: float = 0.9,
    workers: Optional[int] = None,
    videos=None,
) -> CorpusMeasurement:
    """Answer one global top-k over ``num_members`` counting videos."""
    if videos is None:
        videos = counting_videos(scale)[:num_members]
    config = config_for(scale)
    corpus = VideoCorpus.open(videos, counting_udf("car"), config=config)
    # Per-shard Phase 1, fanned across a process pool when asked.
    corpus.prepare(workers=workers)
    outcome = (
        corpus.query().topk(k).guarantee(thres)
        .deterministic_timing().run_detailed()
    )

    answer_counts = {name: 0 for name in corpus.member_names}
    for name, _local in outcome.answer_members():
        answer_counts[name] += 1
    total_confirms = max(1, sum(outcome.shard_confirms))
    members = [
        ShardMeasurement(
            member=member.name,
            frames=len(member.video),
            confirms=confirms,
            confirm_share=confirms / total_confirms,
            answers=answer_counts[member.name],
        )
        for member, confirms in zip(corpus.members, outcome.shard_confirms)
    ]
    report = outcome.report
    return CorpusMeasurement(
        members=members,
        k=k,
        thres=thres,
        total_frames=corpus.total_frames,
        confidence=report.confidence,
        cleaned=report.cleaned,
        speedup=report.speedup,
        simulated_seconds=report.simulated_seconds,
    )


def render(measurement: CorpusMeasurement) -> str:
    rows = [
        [
            shard.member,
            f"{shard.frames:,}",
            f"{shard.confirms}",
            f"{shard.confirm_share:.0%}",
            f"{shard.answers}",
        ]
        for shard in measurement.members
    ]
    table = format_table(
        ("shard", "frames", "confirms", "share", "answers"),
        rows,
        title=(
            f"Federated top-{measurement.k} over "
            f"{len(measurement.members)} shards "
            f"({measurement.total_frames:,} frames), "
            f"guarantee >= {measurement.thres:g}"
        ),
    )
    footer = (
        f"confidence={measurement.confidence:.3f} "
        f"cleaned={measurement.cleaned} "
        f"speedup={measurement.speedup:.1f}x "
        f"(simulated {measurement.simulated_seconds:.0f}s vs fleet scan)"
    )
    return f"{table}\n{footer}"


def main(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    workers: Optional[int] = None,
    **kwargs,
) -> str:
    output = render(run(scale, workers=workers, **kwargs))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main(ExperimentScale.bench())
