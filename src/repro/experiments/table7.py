"""Table 7: dataset characteristics.

Prints the paper's dataset table alongside the scaled frame counts the
synthetic stand-ins use.
"""

from __future__ import annotations

from ..video.datasets import dataset_table
from .runner import ExperimentScale


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = "Table 7: dataset characteristics\n" + dataset_table(
        scale.dataset_scale)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
