"""Experiment harness: one module per paper table / figure.

Each module exposes ``run(scale)`` returning structured records and
``main(scale)`` printing the paper-style table. The benchmark suite
(``benchmarks/``) and ``scripts/collect_experiments.py`` run through
this code, so their numbers agree.
"""

from .runner import (
    ExperimentRecord,
    ExperimentScale,
    SweepPoint,
    counting_videos,
    dashcam_videos,
    execute_sweep,
    format_table,
    record_from_report,
    run_everest,
)
from . import (
    corpus_federated,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    streaming_latency,
    table7,
    table8,
)

__all__ = [
    "ExperimentRecord",
    "ExperimentScale",
    "SweepPoint",
    "counting_videos",
    "dashcam_videos",
    "execute_sweep",
    "format_table",
    "record_from_report",
    "run_everest",
    "corpus_federated",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "streaming_latency",
    "table7",
    "table8",
]
