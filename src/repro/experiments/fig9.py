"""Figure 9: a different scoring function (deep depth estimator).

The fleet-management use case: Top-K most dangerous tailgating moments
on two dashcam videos, scored by a (simulated) monocular depth
estimator. Scenarios follow the paper: default Top-50 (thres=0.9),
Top-100, Top-50 with thres=0.75, and a Top-50 window query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api.session import Session
from ..oracle.depth import tailgating_udf
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    SweepPoint,
    config_for,
    dashcam_videos,
    execute_sweep,
    format_table,
)


@dataclass(frozen=True)
class Scenario:
    """One Figure 9 scenario."""

    label: str
    k: int
    thres: float
    window_size: Optional[int] = None


PAPER_SCENARIOS: Sequence[Scenario] = (
    Scenario("top50", 50, 0.9),
    Scenario("top100", 100, 0.9),
    Scenario("top50-thres0.75", 50, 0.75),
    Scenario("top50-window30", 50, 0.9, window_size=30),
)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    scenarios: Sequence[Scenario] = PAPER_SCENARIOS,
    videos=None,
    workers: Optional[int] = None,
) -> List[ExperimentRecord]:
    if videos is None:
        videos = dashcam_videos(scale)
    config = config_for(scale)
    points: List[SweepPoint] = []
    for video in videos:
        scoring = tailgating_udf()
        session = Session(video, scoring, config=config)
        for scenario in scenarios:
            if scenario.window_size and \
                    len(video) // scenario.window_size < 3 * scenario.k:
                continue
            points.append(SweepPoint(
                session, k=scenario.k, thres=scenario.thres,
                window_size=scenario.window_size, label=scenario.label))
    return execute_sweep(points, workers=workers)


def render(records: List[ExperimentRecord]) -> str:
    rows = [
        [
            r.video,
            str(r.extras.get("scenario", "")),
            f"{r.speedup:.1f}x",
            f"{r.metrics.precision:.3f}",
            f"{r.metrics.rank_distance:.5f}",
            f"{r.metrics.score_error:.4f}",
        ]
        for r in records
    ]
    return format_table(
        ("video", "scenario", "speedup", "precision", "rank-dist",
         "score-err"),
        rows,
        title="Figure 9: scoring with a deep depth estimator "
              "(tailgating UDF)",
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
