"""Figure 8: impact of object density (Visual Road benchmark).

Five synthetic Visual-Road-style videos sharing one camera/scene with
the total car population swept from 50 to 250 (paper Section 4.2.4).
The paper's finding: Everest's speedup and accuracy are insensitive to
the object density.
"""

from __future__ import annotations

from typing import List, Sequence

from ..oracle.detector import counting_udf
from ..video.visual_road import PAPER_DENSITIES, visual_road_suite
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    config_for,
    format_table,
    run_everest,
)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    densities: Sequence[int] = PAPER_DENSITIES,
    k: int = 50,
    thres: float = 0.9,
) -> List[ExperimentRecord]:
    videos = visual_road_suite(
        densities,
        num_frames=scale.visual_road_frames,
        resolution=scale.resolution,
    )
    config = config_for(scale)
    records: List[ExperimentRecord] = []
    for video, density in zip(videos, densities):
        record = run_everest(
            video, counting_udf("car"), k=k, thres=thres, config=config)
        record.extras["density"] = float(density)
        records.append(record)
    return records


def render(records: List[ExperimentRecord]) -> str:
    rows = [
        [
            r.video,
            f"{int(r.extras.get('density', 0))} cars",
            f"{r.speedup:.1f}x",
            f"{r.metrics.precision:.3f}",
            f"{r.metrics.rank_distance:.5f}",
            f"{r.metrics.score_error:.4f}",
        ]
        for r in records
    ]
    return format_table(
        ("video", "density", "speedup", "precision", "rank-dist",
         "score-err"),
        rows,
        title="Figure 8: varying the number of objects "
              "(Visual Road, Top-50, thres=0.9)",
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
