"""Figure 7: Top-K window queries with varying window sizes.

Top-50 windows with window sizes {1, 30, 60, 150, 300} frames (1 =
frame-based query), thres = 0.9, sampling 10% of a window's frames at
confirmation time. The paper's findings: quality stays high; speedup
drops slightly as windows grow (fewer windows to choose among, more
frames confirmed per cleaning).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.session import Session
from ..oracle.detector import counting_udf
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    SweepPoint,
    config_for,
    counting_videos,
    execute_sweep,
    format_table,
    object_label_for,
)

#: The paper's window-size sweep (frames; 1 = no window).
PAPER_WINDOW_SIZES: Sequence[int] = (1, 30, 60, 150, 300)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    window_sizes: Sequence[int] = PAPER_WINDOW_SIZES,
    k: int = 50,
    thres: float = 0.9,
    videos=None,
    workers: Optional[int] = None,
) -> List[ExperimentRecord]:
    if videos is None:
        videos = counting_videos(scale)
    config = config_for(scale)
    points: List[SweepPoint] = []
    for video in videos:
        scoring = counting_udf(object_label_for(video))
        session = Session(video, scoring, config=config)
        for window in window_sizes:
            # Keep at least ~3K windows so Top-K remains meaningful.
            if window > 1 and len(video) // window < 3 * k:
                continue
            points.append(SweepPoint(
                session, k=k, thres=thres,
                window_size=None if window == 1 else window))
    return execute_sweep(points, workers=workers)


def render(records: List[ExperimentRecord]) -> str:
    rows = [
        [
            r.video,
            f"w={r.window_size or 1}",
            f"{r.speedup:.1f}x",
            f"{r.metrics.precision:.3f}",
            f"{r.metrics.rank_distance:.5f}",
            f"{r.metrics.score_error:.4f}",
        ]
        for r in records
    ]
    return format_table(
        ("video", "window", "speedup", "precision", "rank-dist",
         "score-err"),
        rows,
        title="Figure 7: varying the window size (Top-50, thres=0.9)",
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
