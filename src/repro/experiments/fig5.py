"""Figure 5: impact of K (Top-K queries for K in {5,10,25,50,75,100}).

Phase 1 is cached per video (D0 does not depend on K), so the sweep
re-runs only Phase 2 — each report still accounts full Phase 1 cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.session import Session
from ..oracle.detector import counting_udf
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    SweepPoint,
    config_for,
    counting_videos,
    execute_sweep,
    format_table,
    object_label_for,
)

#: The paper's K sweep.
PAPER_KS: Sequence[int] = (5, 10, 25, 50, 75, 100)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    ks: Sequence[int] = PAPER_KS,
    thres: float = 0.9,
    videos=None,
    workers: Optional[int] = None,
) -> List[ExperimentRecord]:
    if videos is None:
        videos = counting_videos(scale)
    config = config_for(scale)
    points: List[SweepPoint] = []
    for video in videos:
        scoring = counting_udf(object_label_for(video))
        session = Session(video, scoring, config=config)
        points.extend(
            SweepPoint(session, k=k, thres=thres) for k in ks)
    return execute_sweep(points, workers=workers)


def render(records: List[ExperimentRecord]) -> str:
    rows = [
        [
            r.video, f"K={r.k}", f"{r.speedup:.1f}x",
            f"{r.metrics.precision:.3f}",
            f"{r.metrics.rank_distance:.5f}",
            f"{r.metrics.score_error:.4f}",
        ]
        for r in records
    ]
    return format_table(
        ("video", "K", "speedup", "precision", "rank-dist", "score-err"),
        rows,
        title="Figure 5: impact of K (thres=0.9)",
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
