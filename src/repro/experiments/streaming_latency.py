"""Streaming experiment: per-append latency and oracle calls vs batch.

Not a paper figure — the paper's engine only sees finished videos —
but the measurement that justifies the streaming subsystem
(DESIGN.md §7): feed a video in chunks and compare, per append,

* the **live** path (incremental Phase 1 + cache-backed re-certify):
  wall latency and *fresh* oracle calls actually paid, against
* the **batch re-run** path (a from-scratch session over the same
  prefix): wall latency and total oracle calls.

The live answers are bit-identical to the batch ones (certified by
``tests/test_streaming_equivalence.py``); this experiment measures
what that equivalence costs. The headline shape: batch re-run cost
grows with the watermark, live cost grows with the delta.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..api.session import Session
from ..errors import ConfigurationError
from ..oracle.detector import counting_udf
from ..video.datasets import COUNTING_DATASETS
from .runner import ExperimentScale, config_for, format_table


@dataclass
class AppendMeasurement:
    """One append, measured both ways."""

    watermark: int
    delta: int
    live_seconds: float
    live_fresh_calls: int
    batch_seconds: float
    batch_calls: int
    identical: bool


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    dataset: str = "archie",
    num_appends: int = 5,
    k: int = 5,
    thres: float = 0.9,
    bootstrap_fraction: float = 0.4,
    videos=None,
) -> List[AppendMeasurement]:
    """Measure ``num_appends`` equal chunks on one counting video."""
    if videos is None:
        spec = COUNTING_DATASETS[dataset]
        video = spec.build(
            scale.dataset_scale,
            resolution=scale.resolution,
            min_frames=scale.min_frames,
        )
    else:
        video = videos[0]
    config = config_for(scale)
    scoring = counting_udf(getattr(video, "object_label", "car"))
    bootstrap = max(1, int(bootstrap_fraction * len(video)))
    chunk = (len(video) - bootstrap) // num_appends
    if chunk < 1:
        raise ConfigurationError(
            f"video leaves {len(video) - bootstrap} frames after the "
            f"bootstrap; cannot split into {num_appends} appends")

    stream = Session.open_stream(
        video, scoring, initial_frames=bootstrap, config=config)
    live = (stream.query().topk(k).guarantee(thres)
            .deterministic_timing().subscribe())

    measurements: List[AppendMeasurement] = []
    # Exactly num_appends equal chunks; the floor's remainder frames
    # simply never arrive (chunk * num_appends <= remaining).
    for _ in range(num_appends):
        result = stream.append(chunk)

        batch_started = time.perf_counter()
        batch = stream.batch_session()
        reference = (batch.query().topk(k).guarantee(thres)
                     .deterministic_timing().run())
        batch_seconds = time.perf_counter() - batch_started

        measurements.append(AppendMeasurement(
            watermark=result.watermark,
            delta=result.segment.num_frames,
            live_seconds=result.wall_seconds,
            live_fresh_calls=result.fresh_oracle_calls,
            batch_seconds=batch_seconds,
            batch_calls=reference.oracle_calls,
            identical=reference.to_json() == live.latest.to_json(),
        ))
    return measurements


def render(measurements: Sequence[AppendMeasurement]) -> str:
    rows = [
        [
            f"{m.watermark:,}",
            f"{m.delta:,}",
            f"{m.live_seconds:.2f}s",
            f"{m.live_fresh_calls}",
            f"{m.batch_seconds:.2f}s",
            f"{m.batch_calls}",
            "yes" if m.identical else "NO",
        ]
        for m in measurements
    ]
    total_live = sum(m.live_fresh_calls for m in measurements)
    total_batch = sum(m.batch_calls for m in measurements)
    table = format_table(
        ("watermark", "delta", "live-lat", "live-fresh-calls",
         "batch-lat", "batch-calls", "identical"),
        rows,
        title="Streaming: per-append cost vs batch re-run",
    )
    return (
        f"{table}\n"
        f"totals: live fresh oracle calls={total_live:,} vs "
        f"batch re-run calls={total_batch:,} "
        f"({total_live / max(total_batch, 1):.1%} of batch)"
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
