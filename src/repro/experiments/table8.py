"""Table 8: detailed breakdown of Everest's end-to-end runtime.

Part (a): fraction of simulated runtime per pipeline stage (the five
columns of the paper's table). Part (b): Phase 2 iteration count and
the percentage of frames cleaned.

Note on ``workers``: the parallel sweep path runs under deterministic
timing (DESIGN.md §6), which drops the one *measured* quantity in the
breakdown — select-candidate wall time — so with ``workers > 1`` the
``select-cand`` column reads 0.00% and the other fractions renormalize
accordingly. The paper's own claim is that this stage contributes
<0.01% of runtime; run serially when you want it measured.
"""

from __future__ import annotations

from typing import List, Optional

from ..api.session import Session
from ..oracle.detector import counting_udf
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    SweepPoint,
    config_for,
    counting_videos,
    execute_sweep,
    format_table,
    object_label_for,
)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    k: int = 50,
    thres: float = 0.9,
    videos=None,
    workers: Optional[int] = None,
) -> List[ExperimentRecord]:
    """Run the default query per video, keeping the full reports."""
    if videos is None:
        videos = counting_videos(scale)
    config = config_for(scale)
    points = [
        SweepPoint(
            Session(video, counting_udf(object_label_for(video)),
                    config=config),
            k=k, thres=thres)
        for video in videos
    ]
    return execute_sweep(points, workers=workers)


def render(records: List[ExperimentRecord]) -> str:
    rows_a = []
    rows_b = []
    for record in records:
        report = record.report
        assert report is not None
        fractions = report.breakdown.fractions()
        rows_a.append([
            record.video,
            f"{fractions.get('label_sample', 0.0):.2%}",
            f"{fractions.get('cmdn_training', 0.0):.2%}",
            f"{fractions.get('populate_d0', 0.0):.2%}",
            f"{fractions.get('select_candidate', 0.0):.2%}",
            f"{fractions.get('confirm_oracle', 0.0):.2%}",
        ])
        rows_b.append([
            record.video,
            f"{report.iterations}",
            f"{report.cleaned_fraction:.2%}",
        ])
    part_a = format_table(
        ("video", "label-sample", "cmdn-train", "populate-D0",
         "select-cand", "confirm-oracle"),
        rows_a,
        title="Table 8(a): latency breakdown (share of simulated runtime)",
    )
    part_b = format_table(
        ("video", "iterations", "frames-cleaned"),
        rows_b,
        title="Table 8(b): Phase 2 statistics",
    )
    return part_a + "\n\n" + part_b


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
