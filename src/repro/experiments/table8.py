"""Table 8: detailed breakdown of Everest's end-to-end runtime.

Part (a): fraction of simulated runtime per pipeline stage (the five
columns of the paper's table). Part (b): Phase 2 iteration count and
the percentage of frames cleaned.
"""

from __future__ import annotations

from typing import List

from ..oracle.detector import counting_udf
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    config_for,
    counting_videos,
    format_table,
    object_label_for,
    run_everest,
)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    k: int = 50,
    thres: float = 0.9,
    videos=None,
) -> List[ExperimentRecord]:
    """Run the default query per video, keeping the full reports."""
    if videos is None:
        videos = counting_videos(scale)
    config = config_for(scale)
    return [
        run_everest(
            video, counting_udf(object_label_for(video)),
            k=k, thres=thres, config=config)
        for video in videos
    ]


def render(records: List[ExperimentRecord]) -> str:
    rows_a = []
    rows_b = []
    for record in records:
        report = record.report
        assert report is not None
        fractions = report.breakdown.fractions()
        rows_a.append([
            record.video,
            f"{fractions.get('label_sample', 0.0):.2%}",
            f"{fractions.get('cmdn_training', 0.0):.2%}",
            f"{fractions.get('populate_d0', 0.0):.2%}",
            f"{fractions.get('select_candidate', 0.0):.2%}",
            f"{fractions.get('confirm_oracle', 0.0):.2%}",
        ])
        rows_b.append([
            record.video,
            f"{report.iterations}",
            f"{report.cleaned_fraction:.2%}",
        ])
    part_a = format_table(
        ("video", "label-sample", "cmdn-train", "populate-D0",
         "select-cand", "confirm-oracle"),
        rows_a,
        title="Table 8(a): latency breakdown (share of simulated runtime)",
    )
    part_b = format_table(
        ("video", "iterations", "frames-cleaned"),
        rows_b,
        title="Table 8(b): Phase 2 statistics",
    )
    return part_a + "\n\n" + part_b


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
