"""Figure 4: overall comparison under the default setting.

Top-50, thres = 0.9 on the five counting videos, comparing Everest
against scan-and-test, HOG, CMDN-only, TinyYOLOv3-only, and the
manually calibrated Select-and-Topk. Reports speedup over scan plus
the three quality metrics, reproducing all four panels of Figure 4 as
one table.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..baselines import (
    calibrated_select_and_topk,
    cmdn_only_topk,
    hog_topk,
    scan_and_test,
    tiny_topk,
)
from ..oracle.base import exact_scores
from ..oracle.detector import counting_udf
from .runner import (
    STANDARD_HEADERS,
    ExperimentRecord,
    ExperimentScale,
    config_for,
    counting_videos,
    evaluate_baseline,
    format_table,
    object_label_for,
    record_row,
    run_everest,
)

#: Default query parameters (paper Section 4).
DEFAULT_K = 50
DEFAULT_THRES = 0.9


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    k: int = DEFAULT_K,
    thres: float = DEFAULT_THRES,
    methods: Optional[List[str]] = None,
    videos=None,
) -> List[ExperimentRecord]:
    """Run the Figure 4 comparison; returns one record per cell."""
    if methods is None:
        methods = [
            "everest", "scan-and-test", "hog",
            "cmdn-only", "tinyyolo-only", "select-and-topk",
        ]
    if videos is None:
        videos = counting_videos(scale)
    config = config_for(scale)
    records: List[ExperimentRecord] = []
    for video in videos:
        scoring = counting_udf(object_label_for(video))
        truth = exact_scores(scoring, video)
        scan_seconds = len(video) * 0.2003  # oracle + decode per frame
        if "scan-and-test" in methods:
            result = scan_and_test(video, scoring, k)
            scan_seconds = result.simulated_seconds
            records.append(evaluate_baseline(result, truth, scan_seconds))
        if "everest" in methods:
            records.append(run_everest(
                video, scoring, k=k, thres=thres, config=config))
        if "hog" in methods:
            records.append(evaluate_baseline(
                hog_topk(video, k), truth, scan_seconds))
        if "cmdn-only" in methods:
            records.append(evaluate_baseline(
                cmdn_only_topk(video, scoring, k, config=config),
                truth, scan_seconds))
        if "tinyyolo-only" in methods:
            records.append(evaluate_baseline(
                tiny_topk(video, k, object_label=object_label_for(video)),
                truth, scan_seconds))
        if "select-and-topk" in methods:
            result = calibrated_select_and_topk(
                video, scoring, k, truth, lambdas=scale.select_lambdas)
            if result is not None:
                records.append(evaluate_baseline(
                    result, truth, scan_seconds))
    return records


def render(records: List[ExperimentRecord]) -> str:
    """Figure 4 as an aligned table (all four panels)."""
    rows = [record_row(r) for r in records]
    return format_table(
        STANDARD_HEADERS, rows,
        title="Figure 4: overall result under the default setting "
              "(Top-50, thres=0.9)",
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
