"""Figure 6: impact of the confidence threshold (thres sweep).

Top-50 queries with thres in {0.5, 0.75, 0.9, 0.95, 0.99}. The paper's
finding: thres barely matters above 0.5 because confidence improves
exponentially with the number of cleaned frames — most iterations are
spent reaching 0.5, very few going from 0.5 to 0.99.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.session import Session
from ..oracle.detector import counting_udf
from .runner import (
    ExperimentRecord,
    ExperimentScale,
    SweepPoint,
    config_for,
    counting_videos,
    execute_sweep,
    format_table,
    object_label_for,
)

#: The paper's threshold sweep.
PAPER_THRESHOLDS: Sequence[float] = (0.5, 0.75, 0.9, 0.95, 0.99)


def run(
    scale: ExperimentScale = ExperimentScale.paper(),
    *,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    k: int = 50,
    videos=None,
    workers: Optional[int] = None,
) -> List[ExperimentRecord]:
    if videos is None:
        videos = counting_videos(scale)
    config = config_for(scale)
    points: List[SweepPoint] = []
    for video in videos:
        scoring = counting_udf(object_label_for(video))
        session = Session(video, scoring, config=config)
        points.extend(
            SweepPoint(session, k=k, thres=thres) for thres in thresholds)
    return execute_sweep(points, workers=workers)


def render(records: List[ExperimentRecord]) -> str:
    rows = [
        [
            r.video, f"thres={r.thres}", f"{r.speedup:.1f}x",
            f"{r.metrics.precision:.3f}",
            f"{r.metrics.rank_distance:.5f}",
            f"{r.metrics.score_error:.4f}",
            f"{int(r.extras.get('iterations', 0))}",
        ]
        for r in records
    ]
    return format_table(
        ("video", "thres", "speedup", "precision", "rank-dist",
         "score-err", "iterations"),
        rows,
        title="Figure 6: impact of the confidence threshold (Top-50)",
    )


def main(scale: ExperimentScale = ExperimentScale.paper()) -> str:
    output = render(run(scale))
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
