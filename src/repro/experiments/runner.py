"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module (fig4 ... fig9, table7, table8) builds on the
helpers here: scaled dataset construction, query execution, metric
evaluation, and aligned-text table rendering. Benchmarks, examples and
``scripts/collect_experiments.py`` all print through this code, so
their numbers agree. Queries run through the declarative API
(DESIGN.md §4): one :class:`~repro.api.session.Session` per (video,
UDF) pair, so parameter sweeps share a single Phase 1 build.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.session import Session
from ..config import EverestConfig, Phase1Config
from ..core.result import QueryReport
from ..core.windows import window_truth
from ..metrics import QualityMetrics, evaluate_answer
from ..oracle.base import ScoringFunction, exact_scores
from ..parallel import ParallelRunner, resolve_workers
from ..video.datasets import COUNTING_DATASETS, DASHCAM_DATASETS, DatasetSpec
from ..video.synthetic import SyntheticVideo


@dataclass(frozen=True)
class ExperimentScale:
    """How large the scaled-down experiments should be.

    ``paper()`` is the scale ``scripts/collect_experiments.py`` records
    results at; ``bench()`` trims video lengths so the full benchmark
    suite completes in minutes; ``quick()`` is for tests.
    """

    dataset_scale: float = 1.0 / 500.0
    min_frames: int = 12_000
    visual_road_frames: int = 10_000
    dashcam_frames: int = 10_000
    resolution: Tuple[int, int] = (24, 24)
    select_lambdas: Sequence[float] = (0.95, 0.9, 0.8, 0.7, 0.5)

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale()

    @staticmethod
    def bench() -> "ExperimentScale":
        return ExperimentScale(
            dataset_scale=1.0 / 2000.0,
            min_frames=6_000,
            visual_road_frames=5_000,
            dashcam_frames=6_000,
            select_lambdas=(0.9, 0.8, 0.6),
        )

    @staticmethod
    def quick() -> "ExperimentScale":
        return ExperimentScale(
            dataset_scale=1.0 / 20000.0,
            min_frames=1_500,
            visual_road_frames=1_500,
            dashcam_frames=1_500,
            select_lambdas=(0.8,),
        )


def default_config() -> EverestConfig:
    """The engine configuration used by all recorded experiments."""
    return EverestConfig()


def quick_config() -> EverestConfig:
    """Small-video configuration (tests and the quick scale)."""
    return EverestConfig.fast()


def config_for(scale: ExperimentScale) -> EverestConfig:
    if scale.min_frames <= 2_000:
        return quick_config()
    return default_config()


def counting_videos(scale: ExperimentScale) -> List[SyntheticVideo]:
    """The five Table 7 counting videos at the requested scale."""
    return [
        spec.build(
            scale.dataset_scale,
            resolution=scale.resolution,
            min_frames=scale.min_frames,
        )
        for spec in COUNTING_DATASETS.values()
    ]


def dashcam_videos(scale: ExperimentScale) -> List[SyntheticVideo]:
    """The two Table 7 dashcam videos (UDF experiment, Figure 9)."""
    return [
        spec.build(
            scale.dashcam_frames / spec.paper_frames,
            resolution=scale.resolution,
            min_frames=1,
        )
        for spec in DASHCAM_DATASETS.values()
    ]


def object_label_for(video: SyntheticVideo) -> str:
    return getattr(video, "object_label", "car")


@dataclass
class ExperimentRecord:
    """One (method, video, parameters) measurement."""

    video: str
    method: str
    k: int
    thres: float
    window_size: Optional[int]
    simulated_seconds: float
    speedup: float
    metrics: QualityMetrics
    report: Optional[QueryReport] = None
    extras: Dict[str, float] = field(default_factory=dict)


def record_from_report(
    video: SyntheticVideo,
    scoring: ScoringFunction,
    report: QueryReport,
    *,
    truth: Optional[np.ndarray] = None,
) -> ExperimentRecord:
    """Evaluate one finished query report against the ground truth.

    The evaluation half of :func:`run_everest`, shared with the
    parallel sweep path (where reports come back from pool workers and
    metrics are computed in the parent).
    """
    k = report.k
    window_size = report.window_size
    if truth is None:
        truth = exact_scores(scoring, video)
    # Continuous UDFs operate at their quantization step's resolution:
    # true scores within one step of the K-th tie with it (counting
    # queries keep the strict tolerance of 0). Window queries operate
    # at the window grid's resolution.
    if window_size and window_size > 1:
        from ..core.windows import WINDOW_STEP_DIVISOR
        truth_items = window_truth(truth, window_size)
        tolerance = scoring.step / WINDOW_STEP_DIVISOR
    else:
        truth_items = truth
        tolerance = scoring.quantization_step or 0.0
    metrics = evaluate_answer(
        report.answer_ids, truth_items, k, tolerance=tolerance)
    return ExperimentRecord(
        video=video.name,
        method="everest",
        k=k,
        thres=report.thres,
        window_size=window_size,
        simulated_seconds=report.simulated_seconds,
        speedup=report.speedup,
        metrics=metrics,
        report=report,
        extras={
            "cleaned": float(report.cleaned),
            "cleaned_fraction": report.cleaned_fraction,
            "iterations": float(report.iterations),
            "confidence": report.confidence,
        },
    )


def run_everest(
    video: SyntheticVideo,
    scoring: ScoringFunction,
    *,
    k: int = 50,
    thres: float = 0.9,
    window_size: Optional[int] = None,
    config: Optional[EverestConfig] = None,
    session: Optional[Session] = None,
    engine=None,
) -> ExperimentRecord:
    """Run one Everest query and evaluate it against the ground truth.

    Pass ``session`` to reuse a cached Phase 1 across a parameter sweep
    (the report still accounts the full Phase 1 cost each time).
    ``engine`` is accepted for backward compatibility and contributes
    its session.
    """
    if session is None:
        if engine is not None:
            session = engine.session
        else:
            session = Session(
                video, scoring, config=config or default_config())
    query = session.query().topk(k).guarantee(thres)
    if window_size and window_size > 1:
        query = query.windows(size=window_size)
    report = query.run()
    return record_from_report(video, scoring, report)


@dataclass(frozen=True)
class SweepPoint:
    """One experiment grid point: a session plus query parameters."""

    session: Session
    k: int = 50
    thres: float = 0.9
    window_size: Optional[int] = None
    #: Optional scenario label recorded under ``extras["scenario"]``.
    label: Optional[str] = None

    def plan(self):
        query = self.session.query().topk(self.k).guarantee(self.thres)
        if self.window_size and self.window_size > 1:
            query = query.windows(size=self.window_size)
        return query.plan()


def execute_sweep(
    points: Sequence[SweepPoint],
    *,
    workers: Optional[int] = None,
) -> List[ExperimentRecord]:
    """Run an experiment sweep, optionally fanned across a pool.

    With one worker (the default unless ``REPRO_WORKERS`` says
    otherwise) this is the classic serial loop. With more, grid points
    execute on a :class:`~repro.parallel.runner.ParallelRunner`: each
    session's Phase 1 is built once here and shared, workers run only
    Phase 2, and the resulting records are identical to the serial
    ones up to the deterministic-timing normalization of the reports.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        records = [
            run_everest(
                point.session.video, point.session.scoring,
                k=point.k, thres=point.thres,
                window_size=point.window_size, session=point.session)
            for point in points
        ]
    else:
        runner = ParallelRunner(workers)
        reports = runner.run_grid(
            [(point.session, point.plan()) for point in points])
        truth_cache: Dict[Tuple[int, int], np.ndarray] = {}
        records = []
        for point, report in zip(points, reports):
            video, scoring = point.session.video, point.session.scoring
            # Keyed by (video, scoring): one video can serve several
            # UDFs in a grid, each with its own ground truth.
            cache_key = (id(video), id(scoring))
            truth = truth_cache.get(cache_key)
            if truth is None:
                truth = exact_scores(scoring, video)
                truth_cache[cache_key] = truth
            records.append(
                record_from_report(video, scoring, report, truth=truth))
    for point, record in zip(points, records):
        if point.label is not None:
            record.extras["scenario"] = point.label
    return records


def evaluate_baseline(
    result,
    truth: np.ndarray,
    scan_seconds: float,
) -> ExperimentRecord:
    """Wrap a :class:`BaselineResult` into an :class:`ExperimentRecord`."""
    metrics = evaluate_answer(result.answer_ids, truth, result.k)
    speedup = (
        scan_seconds / result.simulated_seconds
        if result.simulated_seconds > 0 else float("inf")
    )
    return ExperimentRecord(
        video=result.video_name,
        method=result.method,
        k=result.k,
        thres=float("nan"),
        window_size=None,
        simulated_seconds=result.simulated_seconds,
        speedup=speedup,
        metrics=metrics,
        extras=dict(result.extras),
    )


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def record_row(record: ExperimentRecord) -> List[str]:
    """The standard (method, speedup, quality) table row."""
    return [
        record.video,
        record.method,
        f"{record.speedup:.1f}x",
        f"{record.metrics.precision:.3f}",
        f"{record.metrics.rank_distance:.5f}",
        f"{record.metrics.score_error:.4f}",
    ]


STANDARD_HEADERS = (
    "video", "method", "speedup", "precision", "rank-dist", "score-err")
