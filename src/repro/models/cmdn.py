"""CMDN builders and the proxy-scorer interface used by Phase 1.

Two interchangeable proxies implement the contract "frame pixels ->
Gaussian-mixture score distribution":

* :class:`ConvMDNProxy` — the paper's convolutional mixture density
  network (Figure 2): a conv/max-pool stack whose i-th layer has
  ``2**(i+3)`` 3x3 filters followed by 2x2 pooling, then an MDN layer
  with ``h`` hidden units ("hypotheses") emitting ``g`` Gaussians.
  Depth is configurable; the paper uses five conv layers on 128x128
  inputs, our default is three on small synthetic frames (the paper
  itself notes fewer layers changes little once decode dominates).
* :class:`FeatureMDNProxy` — the same MDN head on cheap hand-crafted
  features (:mod:`repro.models.features`), used for large sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from .features import NUM_FEATURES, FeatureScaler, extract_features
from .layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU
from .mdn import GaussianMixture, MDNHead
from .network import MixtureDensityNetwork


def build_conv_mdn(
    input_hw: Sequence[int],
    *,
    num_gaussians: int,
    num_hypotheses: int,
    num_conv_layers: int = 3,
    seed: int = 0,
) -> MixtureDensityNetwork:
    """Build the paper's CMDN (Figure 2) for ``(H, W)`` grayscale input.

    Layer ``i`` (0-based) has ``2**(i+3)`` filters of 3x3 kernel
    followed by 2x2 max-pooling — 16, 32, 64, 128, 256 filters in the
    paper's five-layer configuration.
    """
    height, width = int(input_hw[0]), int(input_hw[1])
    layers: List[Layer] = []
    channels = 1
    h, w = height, width
    for i in range(num_conv_layers):
        out_channels = 2 ** (i + 4)  # 16, 32, 64, ...
        if h < 2 or w < 2:
            raise ConfigurationError(
                f"input {height}x{width} too small for "
                f"{num_conv_layers} conv/pool layers")
        layers.append(Conv2D(channels, out_channels, 3, seed=seed + i))
        layers.append(ReLU())
        layers.append(MaxPool2D(2))
        channels = out_channels
        h, w = h // 2, w // 2
    layers.append(Flatten())
    flat = channels * h * w
    layers.append(Dense(flat, num_hypotheses, seed=seed + 100))
    layers.append(ReLU())
    head = MDNHead(num_hypotheses, num_gaussians, seed=seed + 200)
    return MixtureDensityNetwork(layers, head)


def build_feature_mdn(
    *,
    num_gaussians: int,
    num_hypotheses: int,
    num_features: int = NUM_FEATURES,
    seed: int = 0,
) -> MixtureDensityNetwork:
    """Dense MDN over hand-crafted features (fast proxy)."""
    layers: List[Layer] = [
        Dense(num_features, num_hypotheses, seed=seed),
        ReLU(),
        Dense(num_hypotheses, num_hypotheses, seed=seed + 1),
        ReLU(),
    ]
    head = MDNHead(num_hypotheses, num_gaussians, seed=seed + 2)
    return MixtureDensityNetwork(layers, head)


class ProxyScorer:
    """Interface: map frame pixels to score distributions."""

    #: (num_gaussians, num_hypotheses) of this proxy.
    hyperparameters: tuple

    def prepare_inputs(self, pixels: np.ndarray) -> np.ndarray:
        """Convert ``(N, H, W)`` pixels to network inputs."""
        raise NotImplementedError

    def predict_mixtures(self, pixels: np.ndarray) -> GaussianMixture:
        """Score distributions (in score units) for a pixel batch."""
        raise NotImplementedError

    def holdout_nll(self, pixels: np.ndarray, scores: np.ndarray) -> float:
        """Model-selection criterion (paper: smallest NLL wins)."""
        mix = self.predict_mixtures(pixels)
        return float(-np.mean(mix.log_likelihood(np.asarray(scores))))


class ConvMDNProxy(ProxyScorer):
    """Paper-faithful convolutional MDN proxy."""

    def __init__(
        self,
        input_hw: Sequence[int],
        *,
        num_gaussians: int,
        num_hypotheses: int,
        num_conv_layers: int = 3,
        seed: int = 0,
    ):
        self.network = build_conv_mdn(
            input_hw,
            num_gaussians=num_gaussians,
            num_hypotheses=num_hypotheses,
            num_conv_layers=num_conv_layers,
            seed=seed,
        )
        self.hyperparameters = (num_gaussians, num_hypotheses)

    def prepare_inputs(self, pixels: np.ndarray) -> np.ndarray:
        arr = np.asarray(pixels, dtype=np.float64)
        if arr.ndim == 2:
            arr = arr[None]
        return arr[:, None, :, :]  # add channel axis

    def predict_mixtures(self, pixels: np.ndarray) -> GaussianMixture:
        return self.network.predict(self.prepare_inputs(pixels))


class FeatureMDNProxy(ProxyScorer):
    """Fast feature-based MDN proxy."""

    def __init__(
        self,
        *,
        num_gaussians: int,
        num_hypotheses: int,
        seed: int = 0,
    ):
        self.network = build_feature_mdn(
            num_gaussians=num_gaussians,
            num_hypotheses=num_hypotheses,
            seed=seed,
        )
        self.scaler = FeatureScaler()
        self._scaler_fitted = False
        self.hyperparameters = (num_gaussians, num_hypotheses)

    def fit_scaler(self, pixels: np.ndarray) -> None:
        self.scaler.fit(extract_features(pixels))
        self._scaler_fitted = True

    def prepare_inputs(self, pixels: np.ndarray) -> np.ndarray:
        if not self._scaler_fitted:
            raise NotFittedError("FeatureMDNProxy scaler not fitted")
        return self.scaler.transform(extract_features(pixels))

    def predict_mixtures(self, pixels: np.ndarray) -> GaussianMixture:
        return self.network.predict(self.prepare_inputs(pixels))
