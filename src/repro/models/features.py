"""Cheap hand-crafted frame features for the fast MDN proxy.

The paper's CMDN consumes raw 128x128 pixels through five conv layers.
That is faithful but expensive in pure numpy, so the library also
offers ``FeatureMDN``: the same mixture-density head on top of a cheap,
fixed feature extractor. Both satisfy Phase 1's contract (frame ->
calibrated score distribution); the conv variant is available for
paper-faithful runs, the feature variant for large sweeps.

Features per frame (``NUM_FEATURES`` total):

* global statistics: mean, std, max, 90th percentile;
* foreground mass: sum of pixels above the median (objects are bright
  blobs on a dark background, so this tracks object count / size);
* a ``GRID x GRID`` grid of block means (coarse spatial layout);
* horizontal + vertical gradient energy (edges / texture).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

#: Side length of the coarse spatial grid.
GRID = 3

#: Total number of features produced per frame.
NUM_FEATURES = 4 + 1 + GRID * GRID + 2


def extract_features(pixels: np.ndarray) -> np.ndarray:
    """Extract features from frames.

    Parameters
    ----------
    pixels:
        Either one frame ``(H, W)`` or a batch ``(N, H, W)``.

    Returns
    -------
    ``(N, NUM_FEATURES)`` float64 array (``N=1`` for a single frame).
    """
    arr = np.asarray(pixels, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None, :, :]
    if arr.ndim != 3:
        raise ShapeError(f"expected (H, W) or (N, H, W), got {arr.shape}")
    n, h, w = arr.shape

    flat = arr.reshape(n, -1)
    mean = flat.mean(axis=1)
    std = flat.std(axis=1)
    peak = flat.max(axis=1)
    p90 = np.percentile(flat, 90, axis=1)
    median = np.median(flat, axis=1)
    foreground = np.maximum(flat - median[:, None], 0.0).sum(axis=1) / (h * w)

    # Coarse spatial grid of block means.
    gh, gw = h // GRID, w // GRID
    trimmed = arr[:, : gh * GRID, : gw * GRID]
    blocks = trimmed.reshape(n, GRID, gh, GRID, gw).mean(axis=(2, 4))
    grid = blocks.reshape(n, GRID * GRID)

    grad_x = np.abs(np.diff(arr, axis=2)).mean(axis=(1, 2))
    grad_y = np.abs(np.diff(arr, axis=1)).mean(axis=(1, 2))

    return np.column_stack(
        [mean, std, peak, p90, foreground, grid, grad_x, grad_y])


class FeatureScaler:
    """Per-feature standardization fitted on the training sample."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.scale: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        self.mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale < 1e-9] = 1.0
        self.scale = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean is None or self.scale is None:
            raise ShapeError("FeatureScaler used before fit")
        return (features - self.mean) / self.scale

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
