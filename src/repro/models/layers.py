"""Neural-network layers implemented in pure numpy.

The paper's proxy is a convolutional mixture density network trained
with PyTorch. PyTorch is unavailable offline, so this module provides
the minimal layer zoo the CMDN needs — Dense, ReLU, Flatten, Conv2D
(im2col-based) and MaxPool2D — each with explicit ``forward`` /
``backward`` passes and per-parameter gradients consumable by the
optimizers in :mod:`repro.models.optim`.

Array convention: batches are leading, images are ``(N, C, H, W)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ShapeError


class Layer:
    """Base layer: stateless unless it owns parameters.

    Subclasses populate ``params`` / ``grads`` dicts keyed by parameter
    name; ``forward`` caches whatever ``backward`` needs.
    """

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for key in self.grads:
            self.grads[key][...] = 0.0


def _he_init(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    """He-normal initialization, appropriate for ReLU stacks."""
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, scale, size=shape)


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, *, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": _he_init(rng, in_features, (in_features, out_features)),
            "b": np.zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense expected (N, {self.in_features}), got {x.shape}")
        self._x = x if training else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before training forward"
        self.grads["W"] += self._x.T @ grad_out
        self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class ReLU(Layer):
    """Elementwise max(0, x)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad_out.reshape(self._shape)


def _im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N, out_h, out_w, C*k*k)`` columns."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0], strides[1],
            strides[2] * stride, strides[3] * stride,
            strides[2], strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, out_h, out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


class Conv2D(Layer):
    """3x3-style convolution via im2col matmul, 'same' padding default."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        *,
        stride: int = 1,
        pad: Optional[int] = None,
        seed: int = 0,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel * kernel
        self.params = {
            "W": _he_init(rng, fan_in, (fan_in, out_channels)),
            "b": np.zeros(out_channels),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2D expected (N, {self.in_channels}, H, W), "
                f"got {x.shape}")
        cols, out_h, out_w = _im2col(x, self.kernel, self.stride, self.pad)
        out = cols @ self.params["W"] + self.params["b"]
        if training:
            self._cols = cols
            self._x_shape = x.shape
        return out.transpose(0, 3, 1, 2)  # (N, out_c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, _, out_h, out_w = grad_out.shape
        grad_cols = grad_out.transpose(0, 2, 3, 1)  # (N, oh, ow, out_c)
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        flat_grad = grad_cols.reshape(-1, self.out_channels)
        self.grads["W"] += flat_cols.T @ flat_grad
        self.grads["b"] += flat_grad.sum(axis=0)

        # Gradient wrt input: scatter column gradients back (col2im).
        grad_col_in = flat_grad @ self.params["W"].T  # (N*oh*ow, C*k*k)
        grad_col_in = grad_col_in.reshape(
            n, out_h, out_w, self.in_channels, self.kernel, self.kernel)
        _, c, h, w = self._x_shape
        pad = self.pad
        grad_x = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
        for ky in range(self.kernel):
            for kx in range(self.kernel):
                grad_x[
                    :, :,
                    ky:ky + out_h * self.stride:self.stride,
                    kx:kx + out_w * self.stride:self.stride,
                ] += grad_col_in[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
        if pad:
            grad_x = grad_x[:, :, pad:-pad, pad:-pad]
        return grad_x


class MaxPool2D(Layer):
    """Non-overlapping 2x2 (or k x k) max pooling."""

    def __init__(self, size: int = 2):
        super().__init__()
        self.size = size
        self._argmax: Optional[np.ndarray] = None
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        # Truncate ragged edges (matches common framework behaviour).
        h_t, w_t = (h // s) * s, (w // s) * s
        x_t = x[:, :, :h_t, :w_t]
        blocks = x_t.reshape(n, c, h_t // s, s, w_t // s, s)
        blocks = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, h_t // s, w_t // s, s * s)
        out = blocks.max(axis=-1)
        if training:
            self._argmax = blocks.argmax(axis=-1)
            self._in_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._in_shape is not None
        n, c, h, w = self._in_shape
        s = self.size
        out_h, out_w = grad_out.shape[2], grad_out.shape[3]
        grad_x = np.zeros((n, c, h, w))
        # Scatter each output gradient to the winning cell of its block.
        flat = self._argmax
        ky, kx = np.divmod(flat, s)
        ni, ci, yi, xi = np.indices((n, c, out_h, out_w))
        grad_x[ni, ci, yi * s + ky, xi * s + kx] = grad_out
        return grad_x
