"""Sequential network container with an MDN head.

:class:`MixtureDensityNetwork` chains feature layers (conv stack or
dense stack) into an :class:`~repro.models.mdn.MDNHead` and exposes:

* :meth:`predict` — mixture parameters for a batch of inputs;
* :meth:`train_step` — one minibatch NLL gradient step (via optimizer);
* :meth:`nll` — holdout NLL for model selection (paper Section 3.2).

Target standardization is handled internally: training targets are
scaled to zero mean / unit variance, and predicted mixtures are mapped
back to score units, so one architecture works for counts (0..15) and
continuous scores alike.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..errors import NotFittedError, ShapeError
from .layers import Layer
from .mdn import GaussianMixture, MDNHead


class MixtureDensityNetwork:
    """Feature layers + MDN head with internal target scaling."""

    def __init__(self, layers: Sequence[Layer], head: MDNHead):
        self.layers: List[Layer] = list(layers)
        self.head = head
        self._y_mean = 0.0
        self._y_scale = 1.0
        self._fitted = False

    # ------------------------------------------------------------------
    # Parameter plumbing (for optimizers)
    # ------------------------------------------------------------------
    @property
    def parameters(self):
        """Yield ``(layer, name, array)`` triples for all parameters."""
        for layer in list(self.layers) + [self.head]:
            for name, value in layer.params.items():
                yield layer, name, value

    def zero_grads(self) -> None:
        for layer in list(self.layers) + [self.head]:
            layer.zero_grads()

    def num_parameters(self) -> int:
        return sum(v.size for _, _, v in self.parameters)

    # ------------------------------------------------------------------
    # Target scaling
    # ------------------------------------------------------------------
    def fit_target_scaling(self, y: np.ndarray) -> None:
        y = np.asarray(y, dtype=np.float64)
        self._y_mean = float(np.mean(y))
        scale = float(np.std(y))
        self._y_scale = scale if scale > 1e-9 else 1.0
        self._fitted = True

    def _scale_targets(self, y: np.ndarray) -> np.ndarray:
        return (np.asarray(y, dtype=np.float64) - self._y_mean) / self._y_scale

    # ------------------------------------------------------------------
    # Forward / training
    # ------------------------------------------------------------------
    def _features(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def forward_raw(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        return self.head.forward(
            self._features(x, training=training), training=training)

    def train_step(self, x: np.ndarray, y: np.ndarray, optimizer) -> float:
        """One minibatch step; returns the (scaled-target) NLL."""
        if not self._fitted:
            raise NotFittedError(
                "call fit_target_scaling before training")
        self.zero_grads()
        self.forward_raw(x, training=True)
        loss, grad = self.head.loss_and_backward(self._scale_targets(y))
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        optimizer.step(self)
        return loss

    def predict(self, x: np.ndarray, batch_size: int = 512) -> GaussianMixture:
        """Mixture parameters in *score units* for a batch of inputs."""
        if not self._fitted:
            raise NotFittedError("model has not been trained")
        x = np.asarray(x, dtype=np.float64)
        pis, mus, sigmas = [], [], []
        for start in range(0, x.shape[0], batch_size):
            chunk = x[start:start + batch_size]
            mix = self.head.mixture(self.forward_raw(chunk, training=False))
            pis.append(mix.pi)
            mus.append(mix.mu * self._y_scale + self._y_mean)
            sigmas.append(mix.sigma * self._y_scale)
        if not pis:
            g = self.head.num_components
            empty = np.zeros((0, g))
            return GaussianMixture(empty, empty.copy(), empty.copy())
        return GaussianMixture(
            pi=np.concatenate(pis),
            mu=np.concatenate(mus),
            sigma=np.concatenate(sigmas),
        )

    def nll(self, x: np.ndarray, y: np.ndarray, batch_size: int = 512) -> float:
        """Mean NLL in score units (model-selection criterion)."""
        mix = self.predict(x, batch_size=batch_size)
        return float(-np.mean(mix.log_likelihood(np.asarray(y))))
