"""Training loop, hyperparameter grid, and holdout model selection.

Paper Section 3.2 / 3.5: Everest trains several CMDNs with different
``(g, h)`` hyperparameters on oracle-labelled sample frames, evaluates
each on a holdout set sampled the same way, and keeps the model with
the smallest negative log-likelihood.

:func:`train_proxy_grid` reproduces that protocol for either proxy
family and reports per-candidate histories, so callers (Phase 1, the
breakdown experiment) can charge training cost and log selection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import Phase1Config
from ..errors import ConfigurationError
from .cmdn import ConvMDNProxy, FeatureMDNProxy, ProxyScorer
from .optim import Adam


@dataclass
class TrainingHistory:
    """Loss trace of one candidate model."""

    hyperparameters: Tuple[int, int]
    epoch_losses: List[float] = field(default_factory=list)
    holdout_nll: float = float("inf")
    wall_seconds: float = 0.0


@dataclass
class GridResult:
    """Outcome of the grid search: the winner plus all histories."""

    proxy: ProxyScorer
    histories: List[TrainingHistory]
    sample_epochs: int  # total (samples x epochs) across the grid

    @property
    def best_history(self) -> TrainingHistory:
        best = min(self.histories, key=lambda h: h.holdout_nll)
        return best


def _iterate_minibatches(
    rng: np.random.Generator,
    num_samples: int,
    batch_size: int,
):
    order = rng.permutation(num_samples)
    for start in range(0, num_samples, batch_size):
        yield order[start:start + batch_size]


def train_network(
    proxy: ProxyScorer,
    train_pixels: np.ndarray,
    train_scores: np.ndarray,
    *,
    epochs: int,
    batch_size: int,
    learning_rate: float,
    seed: int = 0,
) -> List[float]:
    """Fit one proxy network; returns per-epoch mean NLL (scaled units)."""
    if len(train_pixels) != len(train_scores):
        raise ConfigurationError("pixels and scores must align")
    if len(train_pixels) == 0:
        raise ConfigurationError("cannot train on an empty sample")
    if isinstance(proxy, FeatureMDNProxy):
        proxy.fit_scaler(train_pixels)
    inputs = proxy.prepare_inputs(train_pixels)
    network = proxy.network
    network.fit_target_scaling(train_scores)
    optimizer = Adam(learning_rate)
    rng = np.random.default_rng(seed)
    scores = np.asarray(train_scores, dtype=np.float64)

    losses: List[float] = []
    for _ in range(epochs):
        epoch_losses = []
        for batch in _iterate_minibatches(rng, len(inputs), batch_size):
            loss = network.train_step(inputs[batch], scores[batch], optimizer)
            epoch_losses.append(loss)
        losses.append(float(np.mean(epoch_losses)))
    return losses


def train_proxy_grid(
    train_pixels: np.ndarray,
    train_scores: np.ndarray,
    holdout_pixels: np.ndarray,
    holdout_scores: np.ndarray,
    *,
    config: Phase1Config = Phase1Config(),
    input_hw: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> GridResult:
    """Train the ``(g, h)`` grid and keep the smallest-holdout-NLL model.

    ``input_hw`` is required for the conv proxy (when
    ``config.use_feature_mdn`` is False).
    """
    histories: List[TrainingHistory] = []
    candidates: List[ProxyScorer] = []
    sample_epochs = 0

    for i, (g, h) in enumerate(config.cmdn_grid):
        if config.use_feature_mdn:
            proxy: ProxyScorer = FeatureMDNProxy(
                num_gaussians=g, num_hypotheses=h, seed=seed + 31 * i)
        else:
            if input_hw is None:
                raise ConfigurationError(
                    "input_hw required for the conv CMDN")
            proxy = ConvMDNProxy(
                input_hw,
                num_gaussians=g,
                num_hypotheses=h,
                seed=seed + 31 * i,
            )
        start = time.perf_counter()
        epoch_losses = train_network(
            proxy,
            train_pixels,
            train_scores,
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            seed=seed + 7 * i,
        )
        history = TrainingHistory(
            hyperparameters=(g, h),
            epoch_losses=epoch_losses,
            holdout_nll=proxy.holdout_nll(holdout_pixels, holdout_scores),
            wall_seconds=time.perf_counter() - start,
        )
        histories.append(history)
        candidates.append(proxy)
        sample_epochs += len(train_pixels) * config.epochs

    best_index = int(np.argmin([h.holdout_nll for h in histories]))
    return GridResult(
        proxy=candidates[best_index],
        histories=histories,
        sample_epochs=sample_epochs,
    )
