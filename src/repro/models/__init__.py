"""Deep-model substrate: a from-scratch numpy replacement for PyTorch.

Provides exactly what Everest's Phase 1 needs — convolutional /
feature-based mixture density networks, NLL training with Adam, a
hyperparameter grid, and holdout-NLL model selection — with no
external deep-learning dependency.
"""

from .layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU
from .mdn import GaussianMixture, MDNHead, SIGMA_FLOOR
from .network import MixtureDensityNetwork
from .optim import SGD, Adam
from .features import NUM_FEATURES, FeatureScaler, extract_features
from .cmdn import (
    ConvMDNProxy,
    FeatureMDNProxy,
    ProxyScorer,
    build_conv_mdn,
    build_feature_mdn,
)
from .trainer import (
    GridResult,
    TrainingHistory,
    train_network,
    train_proxy_grid,
)

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv2D",
    "MaxPool2D",
    "GaussianMixture",
    "MDNHead",
    "SIGMA_FLOOR",
    "MixtureDensityNetwork",
    "SGD",
    "Adam",
    "NUM_FEATURES",
    "FeatureScaler",
    "extract_features",
    "ProxyScorer",
    "ConvMDNProxy",
    "FeatureMDNProxy",
    "build_conv_mdn",
    "build_feature_mdn",
    "GridResult",
    "TrainingHistory",
    "train_network",
    "train_proxy_grid",
]
