"""Gradient-descent optimizers for the numpy network stack."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError


class SGD:
    """Vanilla SGD with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def step(self, model) -> None:
        for layer, name, value in model.parameters:
            grad = layer.grads[name]
            if self.momentum:
                key = (id(layer), name)
                v = self._velocity.get(key)
                if v is None:
                    v = np.zeros_like(value)
                v = self.momentum * v - self.learning_rate * grad
                self._velocity[key] = v
                value += v
            else:
                value -= self.learning_rate * grad


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, model) -> None:
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta2 ** self._t)
            / (1.0 - self.beta1 ** self._t)
        )
        for layer, name, value in model.parameters:
            grad = layer.grads[name]
            key = (id(layer), name)
            m = self._m.get(key)
            if m is None:
                m = np.zeros_like(value)
                self._m[key] = m
                self._v[key] = np.zeros_like(value)
            v = self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            value -= lr_t * m / (np.sqrt(v) + self.epsilon)
