"""Mixture density network head and Gaussian-mixture utilities.

The CMDN's final layer outputs, per input, the parameters of a
``g``-component Gaussian mixture: weights ``pi`` (softmax), means
``mu``, and standard deviations ``sigma`` (softplus, floored). Training
minimizes the negative log-likelihood of the observed oracle score.

:class:`GaussianMixture` is the library's value type for "a frame's
score distribution": Phase 1 produces one per retained frame, the
window model (paper Eq. 9) aggregates their moments, and the uncertain
relation quantizes them into x-tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.special import logsumexp

from ..errors import ShapeError
from .layers import Layer, _he_init

#: Floor on component standard deviations for numerical stability.
SIGMA_FLOOR = 1e-3

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class GaussianMixture:
    """A 1-D Gaussian mixture: ``pi`` weights, ``mu`` means, ``sigma`` stds.

    Arrays may be batched: shape ``(..., g)``. All operations broadcast
    over leading dimensions.
    """

    pi: np.ndarray
    mu: np.ndarray
    sigma: np.ndarray

    def __post_init__(self):
        if not (self.pi.shape == self.mu.shape == self.sigma.shape):
            raise ShapeError(
                f"mixture parameter shapes differ: {self.pi.shape}, "
                f"{self.mu.shape}, {self.sigma.shape}")

    @property
    def num_components(self) -> int:
        return int(self.pi.shape[-1])

    def mean(self) -> np.ndarray:
        """Mixture mean ``sum_j pi_j mu_j`` (paper: mu-bar)."""
        return np.sum(self.pi * self.mu, axis=-1)

    def variance(self) -> np.ndarray:
        """Total variance ``sum_j pi_j (sigma_j^2 + mu_j^2) - mean^2``."""
        mean = self.mean()
        second_moment = np.sum(
            self.pi * (self.sigma ** 2 + self.mu ** 2), axis=-1)
        return np.maximum(second_moment - mean ** 2, 0.0)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)[..., None]
        z = (x - self.mu) / self.sigma
        comp = np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2 * np.pi))
        return np.sum(self.pi * comp, axis=-1)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        from scipy.stats import norm

        x = np.asarray(x, dtype=np.float64)[..., None]
        return np.sum(self.pi * norm.cdf(x, self.mu, self.sigma), axis=-1)

    def log_likelihood(self, y: np.ndarray) -> np.ndarray:
        """Per-sample log p(y) for batched parameters."""
        y = np.asarray(y, dtype=np.float64)[..., None]
        z = (y - self.mu) / self.sigma
        log_comp = (
            np.log(np.clip(self.pi, 1e-300, None))
            - np.log(self.sigma)
            - 0.5 * (z * z + _LOG_2PI)
        )
        return logsumexp(log_comp, axis=-1)

    def select(self, index) -> "GaussianMixture":
        """Slice batched parameters (e.g. one frame's mixture)."""
        return GaussianMixture(
            pi=self.pi[index], mu=self.mu[index], sigma=self.sigma[index])


def _softplus(x: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, x)


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class MDNHead(Layer):
    """Final layer mapping ``h`` features to mixture parameters.

    Produces, per sample, ``g`` logits (-> pi via softmax), ``g`` means,
    and ``g`` pre-sigmas (-> sigma via softplus + floor). The loss is
    the mixture NLL; gradients follow the standard responsibility form.
    """

    def __init__(self, in_features: int, num_components: int, *, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        g = num_components
        self.in_features = in_features
        self.num_components = g
        self.params = {
            "W": _he_init(rng, in_features, (in_features, 3 * g)),
            "b": np.zeros(3 * g),
        }
        # Spread initial means so components start diverse.
        self.params["b"][g:2 * g] = np.linspace(-1.0, 1.0, g)
        # Start sigmas near softplus^-1(1.0).
        self.params["b"][2 * g:] = 0.54
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cache: Optional[Tuple] = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Return raw ``(N, 3g)`` pre-activations; use :meth:`mixture`."""
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"MDNHead expected (N, {self.in_features}), got {x.shape}")
        out = x @ self.params["W"] + self.params["b"]
        if training:
            self._cache = (x, out)
        return out

    def mixture(self, raw: np.ndarray) -> GaussianMixture:
        """Decode raw pre-activations into mixture parameters."""
        g = self.num_components
        pi = _softmax(raw[:, :g])
        mu = raw[:, g:2 * g]
        sigma = _softplus(raw[:, 2 * g:]) + SIGMA_FLOOR
        return GaussianMixture(pi=pi, mu=mu, sigma=sigma)

    def nll(self, raw: np.ndarray, y: np.ndarray) -> float:
        """Mean negative log-likelihood of targets ``y``."""
        return float(-np.mean(self.mixture(raw).log_likelihood(y)))

    def loss_and_backward(self, y: np.ndarray) -> Tuple[float, np.ndarray]:
        """NLL of the last *training* forward; returns (loss, grad_x)."""
        assert self._cache is not None, "call forward(training=True) first"
        x, raw = self._cache
        n = raw.shape[0]
        g = self.num_components
        mix = self.mixture(raw)
        y_col = np.asarray(y, dtype=np.float64)[:, None]

        z = (y_col - mix.mu) / mix.sigma
        log_comp = (
            np.log(np.clip(mix.pi, 1e-300, None))
            - np.log(mix.sigma)
            - 0.5 * (z * z + _LOG_2PI)
        )
        log_norm = logsumexp(log_comp, axis=-1, keepdims=True)
        resp = np.exp(log_comp - log_norm)  # responsibilities gamma
        loss = float(-np.mean(log_norm))

        # Gradients of mean NLL wrt raw pre-activations.
        grad_raw = np.empty_like(raw)
        grad_raw[:, :g] = (mix.pi - resp) / n                # pi logits
        grad_raw[:, g:2 * g] = (resp * (-z) / mix.sigma) / n  # means
        # d sigma / d pre-sigma = sigmoid(pre-sigma)
        pre_sigma = raw[:, 2 * g:]
        dsigma = 1.0 / (1.0 + np.exp(-pre_sigma))
        grad_sigma = resp * (1.0 / mix.sigma - z * z / mix.sigma) / n
        grad_raw[:, 2 * g:] = grad_sigma * dsigma

        self.grads["W"] += x.T @ grad_raw
        self.grads["b"] += grad_raw.sum(axis=0)
        return loss, grad_raw @ self.params["W"].T
