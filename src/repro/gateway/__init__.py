"""Async multi-tenant HTTP/JSON gateway over the query service.

The wire-facing layer of DESIGN.md §10: :class:`Gateway` (the
transport-free request core), :class:`GatewayServer` (the stdlib
asyncio HTTP/1.1 shell), per-tenant quota policy, the TTL-bounded
result store, the Prometheus-style metrics registry, and the
open-loop multi-tenant load generator used by
``benchmarks/bench_gateway_load.py``.
"""

from .app import Gateway, GatewayConfig
from .http import GatewayServer
from .metrics import GatewayMetrics, parse_metrics_text
from .quotas import QuotaBook, QuotaPolicy
from .results import ResultEntry, ResultStore
from .wire import AppendRequest, QueryRequest, StreamRequest

__all__ = [
    "AppendRequest",
    "Gateway",
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayServer",
    "QueryRequest",
    "QuotaBook",
    "QuotaPolicy",
    "ResultEntry",
    "ResultStore",
    "StreamRequest",
    "parse_metrics_text",
]
