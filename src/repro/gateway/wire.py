"""Wire-format request validation (DESIGN.md §10).

The gateway's JSON bodies are flat dicts; this module turns them into
validated, typed request objects *before* anything touches quota or
scheduler state, so a malformed request is a clean HTTP 400 with the
offending field named — never a stack trace from deep inside a
builder.

The addressing scheme is the registry grammar
(:func:`~repro.api.registry.parse_query_spec`): ``"count[car]/traffic"``
targets one video, ``"count[car]@{a,b}"`` a federated corpus. Query
clauses (``k``, ``guarantee``, ``window``, ``oracle_budget``) mirror
the fluent builder's and are validated by the same code paths it uses.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..api.registry import QuerySpec, parse_query_spec
from ..errors import ConfigurationError

#: Tenant names share the registry name grammar plus ``.`` and ``:``
#: (common in real tenant ids) — bounded so metric labels stay sane.
_TENANT_MAX = 128


def _require_mapping(body) -> Dict:
    if not isinstance(body, dict):
        raise ConfigurationError(
            f"request body must be a JSON object, got "
            f"{type(body).__name__}")
    return body


def _no_unknown_fields(body: Dict, allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown request field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}")


def parse_tenant(body: Dict) -> str:
    tenant = body.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant.strip():
        raise ConfigurationError(
            f"tenant must be a non-empty string, got {tenant!r}")
    tenant = tenant.strip()
    if len(tenant) > _TENANT_MAX:
        raise ConfigurationError(
            f"tenant name longer than {_TENANT_MAX} characters")
    if any(char in tenant for char in '"\n\\'):
        raise ConfigurationError(
            f"tenant name {tenant!r} contains quote/newline/backslash")
    return tenant


def _parse_positive_int(body: Dict, key: str, default=None):
    value = body.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(
            f"{key} must be a positive integer, got {value!r}")
    if value < 1:
        raise ConfigurationError(
            f"{key} must be >= 1, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class QueryRequest:
    """A validated ``POST /query`` body."""

    tenant: str
    spec: QuerySpec
    #: The canonical spec string (the session/corpus cache key).
    spec_string: str
    k: int = 50
    guarantee: float = 0.9
    window_size: Optional[int] = None
    window_step: Optional[float] = None
    oracle_budget: Optional[int] = None

    FIELDS = ("tenant", "spec", "k", "guarantee", "window",
              "window_step", "oracle_budget")

    @classmethod
    def from_body(cls, body) -> "QueryRequest":
        body = _require_mapping(body)
        _no_unknown_fields(body, cls.FIELDS)
        raw_spec = body.get("spec")
        if raw_spec is None:
            raise ConfigurationError("request is missing 'spec'")
        spec = parse_query_spec(raw_spec)

        k = _parse_positive_int(body, "k", 50)
        guarantee = body.get("guarantee", 0.9)
        if isinstance(guarantee, bool) or \
                not isinstance(guarantee, numbers.Real) or \
                not 0.0 < float(guarantee) <= 1.0:
            raise ConfigurationError(
                f"guarantee must be a number in (0, 1], got {guarantee!r}")

        window_size = _parse_positive_int(body, "window")
        window_step = body.get("window_step")
        if window_step is not None:
            if isinstance(window_step, bool) or \
                    not isinstance(window_step, numbers.Real) or \
                    not float(window_step) > 0:
                raise ConfigurationError(
                    f"window_step must be a positive number, "
                    f"got {window_step!r}")
            if window_size is None:
                raise ConfigurationError(
                    "window_step without window makes no sense")
            window_step = float(window_step)
        if spec.kind == "corpus" and window_size is not None:
            raise ConfigurationError(
                "corpus queries rank frames; tumbling window is not "
                "supported")
        if spec.window_seconds is not None and window_size is not None:
            raise ConfigurationError(
                "a '?window=' spec suffix (sliding, seconds) cannot be "
                "combined with the 'window' body field (tumbling, "
                "frames)")

        return cls(
            tenant=parse_tenant(body),
            spec=spec,
            spec_string=spec.canonical(),
            k=k,
            guarantee=float(guarantee),
            window_size=window_size,
            window_step=window_step,
            oracle_budget=_parse_positive_int(body, "oracle_budget"),
        )

    def build(self, target):
        """The fluent query this request describes, over ``target``.

        ``target`` is the cached :class:`~repro.api.session.Session`
        or :class:`~repro.corpus.corpus.VideoCorpus` the spec resolved
        to; clause validation re-runs through the builder itself.
        """
        query = target.query().topk(self.k).guarantee(self.guarantee)
        if self.window_size is not None:
            query = query.windows(
                self.window_size, step=self.window_step)
        if self.spec.window_seconds is not None:
            query = query.window(seconds=self.spec.window_seconds)
        if self.oracle_budget is not None:
            query = query.oracle_budget(self.oracle_budget)
        return query


@dataclass(frozen=True)
class StreamRequest:
    """A validated ``POST /stream`` body (open a streaming session)."""

    tenant: str
    stream_id: str
    spec: QuerySpec
    spec_string: str
    initial_frames: int
    #: Standing subscription refreshed on every append.
    k: int = 10
    guarantee: float = 0.9
    #: Sliding window in seconds (None = unwindowed stream). Set via
    #: the 'window' body field or a '?window=' spec suffix.
    window_seconds: Optional[float] = None

    FIELDS = ("tenant", "stream", "spec", "initial_frames", "k",
              "guarantee", "window")

    @classmethod
    def from_body(cls, body) -> "StreamRequest":
        body = _require_mapping(body)
        _no_unknown_fields(body, cls.FIELDS)
        stream_id = body.get("stream")
        if not isinstance(stream_id, str) or not stream_id.strip():
            raise ConfigurationError(
                f"stream must be a non-empty string id, got {stream_id!r}")
        raw_spec = body.get("spec")
        if raw_spec is None:
            raise ConfigurationError("request is missing 'spec'")
        spec = parse_query_spec(raw_spec)
        if spec.kind != "video":
            raise ConfigurationError(
                f"streams need a 'udf/video' spec, got corpus spec "
                f"{raw_spec!r}")
        initial = _parse_positive_int(body, "initial_frames")
        if initial is None:
            raise ConfigurationError(
                "request is missing 'initial_frames' (the bootstrap "
                "segment Phase 1 trains on)")
        guarantee = body.get("guarantee", 0.9)
        if isinstance(guarantee, bool) or \
                not isinstance(guarantee, numbers.Real) or \
                not 0.0 < float(guarantee) <= 1.0:
            raise ConfigurationError(
                f"guarantee must be a number in (0, 1], got {guarantee!r}")
        window = body.get("window")
        if window is not None:
            if isinstance(window, bool) or \
                    not isinstance(window, numbers.Real) or \
                    not float(window) > 0 or \
                    not float(window) < float("inf"):
                raise ConfigurationError(
                    f"window must be a positive finite number of "
                    f"seconds, got {window!r}")
            window = float(window)
            if spec.window_seconds is not None \
                    and spec.window_seconds != window:
                raise ConfigurationError(
                    f"window={window!r} conflicts with the spec's "
                    f"'?window={spec.window_seconds:g}' suffix; give "
                    f"the window once")
        if window is None:
            window = spec.window_seconds
        return cls(
            tenant=parse_tenant(body),
            stream_id=stream_id.strip(),
            spec=spec,
            spec_string=spec.canonical(),
            initial_frames=initial,
            k=_parse_positive_int(body, "k", 10),
            guarantee=float(guarantee),
            window_seconds=window,
        )


@dataclass(frozen=True)
class AppendRequest:
    """A validated ``POST /append`` body."""

    tenant: str
    stream_id: str
    frames: int

    FIELDS = ("tenant", "stream", "frames")

    @classmethod
    def from_body(cls, body) -> "AppendRequest":
        body = _require_mapping(body)
        _no_unknown_fields(body, cls.FIELDS)
        stream_id = body.get("stream")
        if not isinstance(stream_id, str) or not stream_id.strip():
            raise ConfigurationError(
                f"stream must be a non-empty string id, got {stream_id!r}")
        frames = _parse_positive_int(body, "frames")
        if frames is None:
            raise ConfigurationError(
                "request is missing 'frames' (how many to reveal)")
        return cls(
            tenant=parse_tenant(body),
            stream_id=stream_id.strip(),
            frames=frames,
        )


@dataclass(frozen=True)
class TickRequest:
    """A validated ``POST /tick`` body (expiry on a windowed stream)."""

    tenant: str
    stream_id: str
    frames: int

    FIELDS = ("tenant", "stream", "frames")

    @classmethod
    def from_body(cls, body) -> "TickRequest":
        body = _require_mapping(body)
        _no_unknown_fields(body, cls.FIELDS)
        stream_id = body.get("stream")
        if not isinstance(stream_id, str) or not stream_id.strip():
            raise ConfigurationError(
                f"stream must be a non-empty string id, got {stream_id!r}")
        frames = _parse_positive_int(body, "frames")
        if frames is None:
            raise ConfigurationError(
                "request is missing 'frames' (how far to advance the "
                "stream clock)")
        return cls(
            tenant=parse_tenant(body),
            stream_id=stream_id.strip(),
            frames=frames,
        )
