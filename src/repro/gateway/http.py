"""Asyncio HTTP/1.1 shell around :class:`~repro.gateway.app.Gateway`.

Stdlib only (``asyncio.start_server``): a minimal, careful HTTP/1.1
server — request line + headers + ``Content-Length`` body, keep-alive
by default, ``413`` on oversized bodies, ``400`` on unparsable JSON —
that hands every request to the synchronous gateway core via
``loop.run_in_executor``, so slow queries never block the event loop
and the core stays testable without sockets.

Not implemented on purpose (the gateway is a reproduction harness,
not an internet-facing proxy): TLS, chunked transfer encoding,
pipelining beyond serial keep-alive, and HTTP/2.

Usage::

    server = GatewayServer(gateway, host="127.0.0.1", port=0)
    with server:                      # binds; .port is the real port
        ...                          # serve until the block exits

``serve_forever()`` is the blocking entry point used by
``examples/gateway_serve.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from ..errors import GatewayError
from .app import Gateway

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_MAX_HEADER_BYTES = 32 * 1024


def _encode_response(status: int, payload, *,
                     keep_alive: bool) -> bytes:
    if isinstance(payload, str):  # /metrics exposition
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    reason = _REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if status == 429 and isinstance(payload, dict) \
            and payload.get("retry_after") is not None:
        headers.append(f"Retry-After: {payload['retry_after']:.3f}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


class GatewayServer:
    """One bound asyncio server fronting a :class:`Gateway`.

    The event loop runs on a dedicated thread (started by
    :meth:`start` / ``__enter__``), so the server composes with
    synchronous tests and examples; request handling itself runs on a
    ``ThreadPoolExecutor`` sized to the service's worker count.
    """

    def __init__(
        self,
        gateway: Gateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        handler_threads: Optional[int] = None,
    ):
        self.gateway = gateway
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        threads = handler_threads if handler_threads is not None \
            else max(4, gateway.service.workers * 2)
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="gw-handler")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Connection handling (runs on the event loop)
    # ------------------------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Optional[bytes], bool]]:
        """One request off the wire: (method, path, body, keep_alive).

        Returns None on a cleanly closed idle connection; raises
        :class:`GatewayError` (→ 400/413) on protocol violations.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # peer closed between requests: normal
            raise GatewayError("connection closed mid-request") from error
        except asyncio.LimitOverrunError as error:
            raise GatewayError("request head too large") from error
        if len(head) > _MAX_HEADER_BYTES:
            raise GatewayError("request head too large")
        try:
            text = head.decode("ascii")
        except UnicodeDecodeError as error:
            raise GatewayError("request head is not ASCII") from error
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise GatewayError(f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                raise GatewayError(f"malformed header line {line!r}")
            headers[key.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive") \
            .lower() != "close"
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as error:
            raise GatewayError(
                f"bad Content-Length {length_text!r}") from error
        if length < 0:
            raise GatewayError(f"bad Content-Length {length!r}")
        if length > self.gateway.config.max_body_bytes:
            raise _PayloadTooLarge(
                f"body of {length} bytes exceeds the "
                f"{self.gateway.config.max_body_bytes}-byte limit")
        body = await reader.readexactly(length) if length else None
        return method, path, body, keep_alive

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _PayloadTooLarge as error:
                    writer.write(_encode_response(
                        413, {"error": "PayloadTooLarge",
                              "message": str(error)},
                        keep_alive=False))
                    await writer.drain()
                    return
                except GatewayError as error:
                    writer.write(_encode_response(
                        400, {"error": "BadRequest",
                              "message": str(error)},
                        keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                method, path, raw_body, keep_alive = request
                if raw_body:
                    try:
                        body = json.loads(raw_body)
                    except ValueError:
                        writer.write(_encode_response(
                            400, {"error": "BadRequest",
                                  "message": "body is not valid JSON"},
                            keep_alive=keep_alive))
                        await writer.drain()
                        if keep_alive:
                            continue
                        return
                else:
                    body = None
                status, payload = await loop.run_in_executor(
                    self._executor,
                    self.gateway.handle, method, path, body)
                writer.write(_encode_response(
                    status, payload, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(asyncio.start_server(
                self._handle_connection, self.host,
                self._requested_port))
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as error:  # noqa: BLE001 - to start()
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def start(self) -> "GatewayServer":
        """Bind and serve on a background thread; returns self."""
        if self._thread is not None:
            raise GatewayError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="gw-server", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop serving (idempotent); the gateway itself stays open."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._executor.shutdown(wait=False)

    @property
    def address(self) -> str:
        if self.port is None:
            raise GatewayError("server is not started")
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Blocking entry point: serve until interrupted."""
        self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _PayloadTooLarge(GatewayError):
    """Internal: body exceeded ``max_body_bytes`` (HTTP 413)."""
