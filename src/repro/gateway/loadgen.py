"""Open-loop multi-tenant load generation (DESIGN.md §10).

Drives a :class:`~repro.gateway.app.Gateway` the way a population of
independent clients would: a deterministic **plan** of timestamped
operations (queries and streaming appends) is compiled first from a
seeded :class:`numpy.random.RandomState`, then **fired on schedule
regardless of completions** — the open-loop discipline, so backpressure
shows up as 429s and latency, never as a politely slowed generator.

Skew is explicit: video popularity follows a Zipf pmf
(``p_i ∝ 1/i^s``) over the spec list, and tenants draw from the same
family, so a few hot tenants and hot videos dominate — the regime
where per-tenant quotas and cross-tenant artifact sharing both matter.

Two transports speak the same wire format: in-process
(``gateway.handle`` — no sockets, the default for benchmarks) and
HTTP (a keep-alive ``http.client`` connection pool against a
:class:`~repro.gateway.http.GatewayServer`). The
:class:`LoadReport` keeps ground-truth tallies of every response the
generator saw; :func:`reconcile` asserts the gateway's ``/metrics``
exposition agrees with them exactly.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, GatewayError
from .metrics import parse_metrics_text, quantile

# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def zipf_pmf(n: int, s: float) -> np.ndarray:
    """The normalized Zipf pmf ``p_i ∝ 1/i^s`` over ranks ``1..n``."""
    if n < 1:
        raise ConfigurationError(f"zipf support must be >= 1, got {n}")
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** float(s)
    return weights / weights.sum()


@dataclass(frozen=True)
class Op:
    """One scheduled wire operation."""

    time_offset: float
    tenant: str
    kind: str  # "query" | "append"
    payload: Dict[str, object]


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one open-loop run (fully deterministic given ``seed``)."""

    #: Query specs in popularity order (rank 1 = hottest).
    specs: Tuple[str, ...]
    num_tenants: int = 1000
    #: Total query submissions over the run.
    num_queries: int = 500
    #: Run length in seconds; arrivals spread uniformly at random.
    duration: float = 2.0
    #: Zipf exponents for video popularity and tenant activity.
    video_skew: float = 1.1
    tenant_skew: float = 1.0
    k_choices: Tuple[int, ...] = (3, 5, 10)
    guarantee_choices: Tuple[float, ...] = (0.9, 0.95)
    #: Streams opened before the run: (stream_id, spec, initial_frames).
    streams: Tuple[Tuple[str, str, int], ...] = ()
    #: Appends per stream, interleaved with the query schedule.
    appends_per_stream: int = 0
    append_frames: int = 30
    seed: int = 0

    def __post_init__(self):
        if not self.specs:
            raise ConfigurationError("LoadSpec needs at least one spec")
        if self.num_tenants < 1 or self.num_queries < 0:
            raise ConfigurationError(
                "num_tenants must be >= 1 and num_queries >= 0")
        if not self.duration > 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration!r}")


def tenant_name(index: int) -> str:
    return f"t{index:05d}"


def build_plan(spec: LoadSpec) -> List[Op]:
    """Compile the deterministic operation schedule for ``spec``.

    Query arrival times are i.i.d. uniform over the run (a binned
    Poisson process's order statistics), videos and tenants are
    Zipf-distributed, and each stream's appends are evenly spaced with
    a seeded jitter. The result is sorted by ``time_offset`` — the
    firing order — and depends only on ``spec``.
    """
    rng = np.random.RandomState(spec.seed)
    ops: List[Op] = []

    video_p = zipf_pmf(len(spec.specs), spec.video_skew)
    tenant_p = zipf_pmf(spec.num_tenants, spec.tenant_skew)
    # Shuffle tenant ranks once so the hot tenants are not always the
    # lexicographically first names (catches accidental name-order
    # coupling in the gateway); the permutation is seeded too.
    tenant_rank = rng.permutation(spec.num_tenants)

    times = rng.uniform(0.0, spec.duration, size=spec.num_queries)
    spec_idx = rng.choice(len(spec.specs), size=spec.num_queries,
                          p=video_p)
    tenant_idx = rng.choice(spec.num_tenants, size=spec.num_queries,
                            p=tenant_p)
    k_idx = rng.randint(0, len(spec.k_choices), size=spec.num_queries)
    g_idx = rng.randint(0, len(spec.guarantee_choices),
                        size=spec.num_queries)
    for i in range(spec.num_queries):
        ops.append(Op(
            time_offset=float(times[i]),
            tenant=tenant_name(int(tenant_rank[tenant_idx[i]])),
            kind="query",
            payload={
                "spec": spec.specs[int(spec_idx[i])],
                "k": int(spec.k_choices[int(k_idx[i])]),
                "guarantee": float(
                    spec.guarantee_choices[int(g_idx[i])]),
            },
        ))

    for stream_index, (stream_id, _spec, _initial) in \
            enumerate(spec.streams):
        owner = tenant_name(stream_index)  # stream owners are t00000…
        step = spec.duration / max(1, spec.appends_per_stream)
        for a in range(spec.appends_per_stream):
            jitter = float(rng.uniform(0.0, 0.5 * step))
            ops.append(Op(
                time_offset=min(spec.duration, a * step + jitter),
                tenant=owner,
                kind="append",
                payload={
                    "stream": stream_id,
                    "frames": spec.append_frames,
                },
            ))

    ops.sort(key=lambda op: (op.time_offset, op.tenant, op.kind))
    return ops


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------


class InProcessTransport:
    """Fire requests straight into ``gateway.handle`` (no sockets)."""

    def __init__(self, gateway):
        self.gateway = gateway

    def request(self, method: str, path: str,
                body=None) -> Tuple[int, object]:
        return self.gateway.handle(method, path, body)

    def close(self) -> None:
        pass


class HTTPTransport:
    """A keep-alive connection pool against a :class:`GatewayServer`.

    Connections are borrowed per request and returned on success; a
    connection that errors is discarded and replaced, so one dropped
    socket never wedges the pool.
    """

    def __init__(self, host: str, port: int, *, pool_size: int = 16,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._pool: List[HTTPConnection] = []
        self._lock = threading.Lock()
        self._pool_size = pool_size

    def _borrow(self) -> HTTPConnection:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout)

    def _give_back(self, conn: HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def request(self, method: str, path: str,
                body=None) -> Tuple[int, object]:
        conn = self._borrow()
        try:
            data = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=data,
                         headers={"Content-Type": "application/json"}
                         if data else {})
            response = conn.getresponse()
            raw = response.read()
            status = response.status
        except Exception:
            conn.close()
            raise
        self._give_back(conn)
        content_type = response.headers.get("Content-Type", "")
        if "application/json" in content_type:
            return status, json.loads(raw)
        return status, raw.decode("utf-8")

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


@dataclass
class LoadReport:
    """Ground truth of everything the generator saw on the wire."""

    plan_ops: int = 0
    fired_ops: int = 0
    #: tenant -> count of each outcome the generator observed.
    submitted: Dict[str, int] = field(default_factory=dict)
    completed: Dict[str, int] = field(default_factory=dict)
    failed: Dict[str, int] = field(default_factory=dict)
    #: (tenant, reason) -> 429s observed at submit time.
    rejected: Dict[Tuple[str, str], int] = field(default_factory=dict)
    appends_applied: Dict[str, int] = field(default_factory=dict)
    append_frames: Dict[str, int] = field(default_factory=dict)
    appends_rejected: Dict[Tuple[str, str], int] = field(
        default_factory=dict)
    #: Appends that returned neither applied nor a quota refusal.
    appends_errored: int = 0
    #: stream id -> last watermark the generator saw.
    watermarks: Dict[str, int] = field(default_factory=dict)
    #: result id -> (tenant, spec, k, guarantee) for byte-identity.
    accepted: Dict[str, Tuple[str, str, int, float]] = field(
        default_factory=dict)
    #: result id -> report_json for every query that finished "done".
    reports: Dict[str, str] = field(default_factory=dict)
    #: Server-measured submit→complete seconds per done query.
    latencies: List[float] = field(default_factory=list)
    #: Worst lateness of any fired op vs its schedule (seconds).
    max_behind: float = 0.0
    wall_seconds: float = 0.0
    unresolved: int = 0

    @staticmethod
    def _bump(table, key, amount: int = 1) -> None:
        table[key] = table.get(key, 0) + amount

    def latency_quantile(self, q: float) -> float:
        return quantile(sorted(self.latencies), q)

    def total(self, table: Dict) -> int:
        return int(sum(table.values()))

    def summary(self) -> Dict[str, object]:
        return {
            "plan_ops": self.plan_ops,
            "fired_ops": self.fired_ops,
            "submitted": self.total(self.submitted),
            "completed": self.total(self.completed),
            "failed": self.total(self.failed),
            "rejected": self.total(self.rejected),
            "appends_applied": self.total(self.appends_applied),
            "append_frames": self.total(self.append_frames),
            "appends_rejected": self.total(self.appends_rejected),
            "appends_errored": self.appends_errored,
            "unresolved": self.unresolved,
            "p50_seconds": self.latency_quantile(0.5),
            "p95_seconds": self.latency_quantile(0.95),
            "p99_seconds": self.latency_quantile(0.99),
            "max_behind_seconds": self.max_behind,
            "wall_seconds": self.wall_seconds,
        }


def run_plan(
    transport,
    ops: List[Op],
    *,
    guns: int = 4,
    poll_timeout: float = 120.0,
    poll_interval: float = 0.02,
    time_scale: float = 1.0,
) -> LoadReport:
    """Fire ``ops`` open-loop, then poll every accepted id to rest.

    ``guns`` firing threads each take a round-robin slice of the
    schedule and fire at ``time_offset * time_scale`` past the common
    start instant, **never waiting for responses to come back before
    the next shot is due** — lateness is recorded, not compensated.
    After the last shot, accepted queries are polled until none is
    pending or ``poll_timeout`` elapses.
    """
    report = LoadReport(plan_ops=len(ops))
    lock = threading.Lock()
    start = time.monotonic() + 0.05  # common epoch for all guns

    def fire(op: Op) -> None:
        if op.kind == "query":
            status, body = transport.request(
                "POST", "/query", {"tenant": op.tenant, **op.payload})
            with lock:
                if status == 202:
                    report._bump(report.submitted, op.tenant)
                    report.accepted[body["id"]] = (
                        op.tenant, op.payload["spec"],
                        op.payload["k"], op.payload["guarantee"])
                elif status == 429:
                    report._bump(
                        report.rejected,
                        (op.tenant, body.get("reason", "unknown")))
                else:
                    report._bump(report.failed, op.tenant)
        elif op.kind == "append":
            status, body = transport.request(
                "POST", "/append", {"tenant": op.tenant, **op.payload})
            stream = op.payload["stream"]
            with lock:
                if isinstance(body, dict) and body.get("applied"):
                    # Frames landed (even under a 429/503 refresh
                    # refusal) — the fully-applied contract on the wire.
                    report._bump(report.appends_applied, op.tenant)
                    report._bump(report.append_frames, op.tenant,
                                 int(op.payload["frames"]))
                    report.watermarks[stream] = int(body["watermark"])
                elif status == 429:
                    report._bump(
                        report.appends_rejected,
                        (op.tenant, body.get("reason", "unknown")))
                else:
                    report.appends_errored += 1
        else:  # pragma: no cover - plans only contain the two kinds
            raise GatewayError(f"unknown op kind {op.kind!r}")

    def gun(slice_ops: List[Op]) -> None:
        for op in slice_ops:
            due = start + op.time_offset * time_scale
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            behind = time.monotonic() - due
            fire(op)
            with lock:
                report.fired_ops += 1
                report.max_behind = max(report.max_behind, behind)

    threads = [
        threading.Thread(
            target=gun, args=(ops[i::guns],), name=f"gun-{i}")
        for i in range(max(1, guns))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Poll every accepted id to a terminal state (the generator's view
    # of completion; the gateway's own counters must agree).
    deadline = time.monotonic() + poll_timeout
    outstanding = set(report.accepted)
    while outstanding and time.monotonic() < deadline:
        for result_id in sorted(outstanding):
            status, body = transport.request(
                "GET", f"/result/{result_id}")
            if status != 200 or body["status"] == "pending":
                continue
            outstanding.discard(result_id)
            tenant = report.accepted[result_id][0]
            if body["status"] == "done":
                report._bump(report.completed, tenant)
                report.reports[result_id] = body["report_json"]
                report.latencies.append(
                    float(body["latency_seconds"]))
            else:
                report._bump(report.failed, tenant)
        if outstanding:
            time.sleep(poll_interval)
    report.unresolved = len(outstanding)
    report.wall_seconds = time.monotonic() - start
    return report


# ----------------------------------------------------------------------
# Reconciliation
# ----------------------------------------------------------------------


def reconcile(report: LoadReport, metrics_text: str) -> List[str]:
    """Check the gateway's ``/metrics`` against generator ground truth.

    Returns a list of human-readable mismatches (empty = reconciled):
    per-tenant submitted/completed/failed/rejected counters, append
    and frame counters, and the zero-dropped-appends invariant. The
    gateway may have served traffic beyond this generator's (its
    counters are >= ours is *not* tolerated — benchmarks own the whole
    gateway, so every counter must match exactly).
    """
    samples = parse_metrics_text(metrics_text)
    problems: List[str] = []

    def check(metric: str, expected: Dict, label_key: str = "tenant",
              extra_label: Optional[str] = None) -> None:
        observed: Dict = {}
        for (name, labels), value in samples.items():
            if name != metric:
                continue
            labelmap = dict(labels)
            if extra_label is None:
                key = labelmap.get(label_key)
            else:
                key = (labelmap.get(label_key),
                       labelmap.get(extra_label))
            observed[key] = observed.get(key, 0) + int(value)
        expected = {k: v for k, v in expected.items() if v}
        if observed != expected:
            missing = {k: v for k, v in expected.items()
                       if observed.get(k) != v}
            surplus = {k: v for k, v in observed.items()
                       if expected.get(k) != v}
            problems.append(
                f"{metric}: expected{missing!r} != observed{surplus!r}")

    check("everest_gateway_queries_submitted_total", report.submitted)
    check("everest_gateway_queries_completed_total", report.completed)
    check("everest_gateway_queries_failed_total", report.failed)
    check("everest_gateway_queries_rejected_total",
          dict(report.rejected), extra_label="reason")
    check("everest_gateway_appends_total", report.appends_applied)
    check("everest_gateway_append_frames_total", report.append_frames)
    check("everest_gateway_appends_rejected_total",
          dict(report.appends_rejected), extra_label="reason")
    dropped = sum(
        value for (name, _labels), value in samples.items()
        if name == "everest_gateway_appends_dropped_total")
    if dropped:
        problems.append(
            f"everest_gateway_appends_dropped_total = {dropped} != 0")
    return problems
