"""TTL-bounded async result store (DESIGN.md §10).

``POST /query`` returns an id immediately; the report lands here when
the scheduler finishes, and clients poll ``GET /result/<id>``. Four
states a poll can observe:

* **pending** — submitted, not finished;
* **done** — the report is here (with the exact ``to_json()`` bytes,
  the byte-identity contract's ground truth);
* **failed** — the query raised; the error class and message are
  preserved;
* **expired** — a finished entry outlived ``ttl`` seconds and was
  evicted: :class:`~repro.errors.ResultExpiredError` (HTTP 410),
  distinct from an id that never existed (:class:`KeyError`, 404).

The TTL clock starts at *completion* (a slow query cannot expire
while still running); ``max_entries`` additionally bounds memory by
evicting the oldest finished entries first. The clock is injectable
for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.result import QueryReport
from ..errors import ConfigurationError, GatewayError, ResultExpiredError

Clock = Callable[[], float]


@dataclass
class ResultEntry:
    """One tracked query: its lifecycle state and payload."""

    result_id: str
    tenant: str
    spec: str
    created_at: float
    status: str = "pending"  # pending | done | failed
    finished_at: Optional[float] = None
    #: Simulated-latency-free wall clock from submit to completion.
    latency_seconds: Optional[float] = None
    report: Optional[QueryReport] = None
    #: The exact ``report.to_json()`` bytes, captured at completion —
    #: what the gateway serves and what byte-identity is checked on.
    report_json: Optional[str] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    #: The query's trace id when the service traced it (DESIGN.md §12)
    #: — the key for ``GET /trace/<id>``.
    trace_id: Optional[str] = None
    #: The finished trace's summary dict, captured at completion.
    trace_summary: Optional[Dict[str, object]] = None

    def body(self) -> Dict[str, object]:
        """The wire payload for ``GET /result/<id>``."""
        payload: Dict[str, object] = {
            "id": self.result_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "status": self.status,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.status == "done":
            payload["latency_seconds"] = self.latency_seconds
            payload["report_json"] = self.report_json
        elif self.status == "failed":
            payload["latency_seconds"] = self.latency_seconds
            payload["error"] = self.error_type
            payload["message"] = self.error_message
        if self.trace_summary is not None and self.status != "pending":
            payload["trace"] = self.trace_summary
        return payload


class ResultStore:
    """Thread-safe id -> :class:`ResultEntry` map with TTL eviction."""

    def __init__(
        self,
        *,
        ttl: float = 300.0,
        max_entries: Optional[int] = 100_000,
        clock: Clock = time.monotonic,
    ):
        if not ttl > 0:
            raise ConfigurationError(f"result ttl must be > 0, got {ttl!r}")
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be None or >= 1, got {max_entries!r}")
        self.ttl = float(ttl)
        self.max_entries = max_entries
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[str, ResultEntry] = {}
        #: Ids evicted by TTL or capacity — polls answer 410, not 404.
        #: Bounded itself (oldest ids degrade to 404) so a long-lived
        #: gateway's tombstone set cannot grow without limit.
        self._expired: "OrderedDict[str, None]" = OrderedDict()
        self._expired_cap = 10 * (max_entries or 100_000)
        self.expired_total = 0

    # ------------------------------------------------------------------
    def put_pending(self, result_id: str, tenant: str, spec: str) -> None:
        with self._lock:
            if result_id in self._entries:
                raise GatewayError(f"duplicate result id {result_id!r}")
            self._entries[result_id] = ResultEntry(
                result_id=result_id, tenant=tenant, spec=spec,
                created_at=self._clock())
            self._sweep()

    def _finish(self, result_id: str, **updates) -> None:
        with self._lock:
            entry = self._entries.get(result_id)
            if entry is None:  # evicted while running: drop the result
                return
            now = self._clock()
            entry.finished_at = now
            entry.latency_seconds = now - entry.created_at
            for key, value in updates.items():
                setattr(entry, key, value)

    def complete(self, result_id: str, report: QueryReport) -> None:
        """Record a finished query (captures the canonical bytes)."""
        self._finish(
            result_id, status="done", report=report,
            report_json=report.to_json())

    def set_trace(
        self,
        result_id: str,
        trace_id: Optional[str],
        summary: Optional[Dict[str, object]] = None,
    ) -> None:
        """Attach trace linkage to an entry (no-op when evicted).

        Called twice per traced query: at submit with just the id (so
        pending polls can already point at ``GET /trace/<id>``) and at
        completion with the finished trace's summary.
        """
        with self._lock:
            entry = self._entries.get(result_id)
            if entry is None:
                return
            if trace_id is not None:
                entry.trace_id = trace_id
            if summary is not None:
                entry.trace_summary = summary

    def fail(self, result_id: str, error: BaseException) -> None:
        self._finish(
            result_id, status="failed",
            error_type=type(error).__name__, error_message=str(error))

    # ------------------------------------------------------------------
    def get(self, result_id: str) -> ResultEntry:
        """The entry for an id; raises on unknown or expired ids."""
        with self._lock:
            self._sweep()
            entry = self._entries.get(result_id)
            if entry is None:
                if result_id in self._expired:
                    raise ResultExpiredError(result_id)
                raise KeyError(result_id)
            return entry

    def _sweep(self) -> None:
        """Evict over-TTL and over-capacity entries (lock held)."""
        now = self._clock()
        stale = [
            rid for rid, entry in self._entries.items()
            if entry.finished_at is not None
            and now - entry.finished_at > self.ttl
        ]
        for rid in stale:
            self._evict(rid)
        if self.max_entries is not None and \
                len(self._entries) > self.max_entries:
            finished = sorted(
                (e for e in self._entries.values()
                 if e.finished_at is not None),
                key=lambda e: e.finished_at)
            overflow = len(self._entries) - self.max_entries
            for entry in finished[:overflow]:
                self._evict(entry.result_id)

    def _evict(self, result_id: str) -> None:
        del self._entries[result_id]
        self._expired[result_id] = None
        while len(self._expired) > self._expired_cap:
            self._expired.popitem(last=False)
        self.expired_total += 1

    # ------------------------------------------------------------------
    def pending_ids(self) -> list:
        with self._lock:
            return [
                rid for rid, entry in self._entries.items()
                if entry.status == "pending"
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
