"""Prometheus-style metrics for the gateway (DESIGN.md §10).

:class:`GatewayMetrics` is the gateway's counter/histogram registry;
``render()`` produces the ``text/plain; version=0.0.4`` exposition
format served at ``GET /metrics``. The catalog (all prefixed
``everest_gateway_`` / ``everest_service_``):

* ``queries_submitted_total{tenant=}`` / ``queries_completed_total`` /
  ``queries_failed_total`` — per-tenant query lifecycle counters;
* ``queries_rejected_total{tenant=,reason=}`` — backpressure refusals
  by :class:`~repro.errors.AdmissionError` reason code;
* ``appends_total{tenant=}`` / ``append_frames_total`` /
  ``appends_dropped_total`` — streaming ingest (the dropped counter
  exists to be provably zero);
* ``latency_seconds{op=,quantile=}`` + ``_count`` / ``_sum`` —
  p50/p95/p99 summaries per operation (query end-to-end, append,
  http request handling);
* ``queue_depth`` / ``inflight`` gauges and the service-side
  Phase-1 cache counters (builds/hits/warm hits → hit rate), lifted
  from :class:`~repro.service.service.ServiceStats` at render time.

``parse_metrics_text()`` is the inverse the tests and the load
benchmark reconcile against — counters exported here must equal the
load generator's ground-truth tallies exactly.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Quantiles exported for every latency summary.
QUANTILES = (0.5, 0.95, 0.99)

#: A parsed sample: (metric name, ((label, value), ...)) -> value.
LabelSet = Tuple[Tuple[str, str], ...]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value != value:  # NaN (empty summary quantiles)
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def quantile(sorted_samples: List[float], q: float) -> float:
    """The ``q``-quantile (nearest-rank) of ascending ``samples``."""
    if not sorted_samples:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


class LatencySummary:
    """Bounded sample set exporting count/sum and p50/p95/p99.

    Samples beyond ``max_samples`` overwrite the buffer ring-style —
    a long-lived gateway holds at most ``max_samples`` floats per op,
    never memory linear in request count. The quantiles then describe
    the most recent window while count and sum stay exact — the
    standard summary trade-off.
    """

    def __init__(self, max_samples: int = 65_536):
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self._samples: List[float] = []

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.sum += seconds
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:
            # count was already incremented: sample N lands in slot
            # (N-1) % size, so the ring truly cycles. (The previous
            # ``count % size`` skipped slot 0 every lap, pinning the
            # oldest sample in the window forever.)
            self._samples[(self.count - 1) % self.max_samples] = seconds

    def samples(self) -> List[float]:
        """The retained window (ring order, not arrival order)."""
        return list(self._samples)

    def quantiles(self) -> Dict[float, float]:
        ordered = sorted(self._samples)
        return {q: quantile(ordered, q) for q in QUANTILES}


class GatewayMetrics:
    """Thread-safe counters + latency summaries, rendered on demand."""

    def __init__(self, *, max_latency_samples: int = 65_536):
        self._lock = threading.Lock()
        self.max_latency_samples = max_latency_samples
        self.submitted: Dict[str, int] = {}
        self.completed: Dict[str, int] = {}
        self.failed: Dict[str, int] = {}
        self.rejected: Dict[Tuple[str, str], int] = {}
        self.appends: Dict[str, int] = {}
        self.appends_rejected: Dict[Tuple[str, str], int] = {}
        self.append_frames: Dict[str, int] = {}
        self.append_errors: Dict[str, int] = {}
        #: Appends accepted but whose frames did not land. The
        #: streaming append contract (DESIGN.md §7) makes every append
        #: fully-applied before any refresh error can surface, so this
        #: stays zero; it is exported so the invariant is checkable.
        self.dropped_appends: Dict[str, int] = {}
        #: Completed queries whose end-to-end latency exceeded the
        #: gateway's slow-query threshold, per tenant.
        self.slow_queries: Dict[str, int] = {}
        self._latency: Dict[str, LatencySummary] = {}

    # -- recording -----------------------------------------------------
    def _bump(self, table: Dict, key, amount: int = 1) -> None:
        with self._lock:
            table[key] = table.get(key, 0) + amount

    def count_submitted(self, tenant: str) -> None:
        self._bump(self.submitted, tenant)

    def count_completed(self, tenant: str) -> None:
        self._bump(self.completed, tenant)

    def count_failed(self, tenant: str) -> None:
        self._bump(self.failed, tenant)

    def count_rejected(self, tenant: str, reason: str) -> None:
        self._bump(self.rejected, (tenant, reason))

    def count_append(self, tenant: str, frames: int) -> None:
        self._bump(self.appends, tenant)
        self._bump(self.append_frames, tenant, frames)

    def count_append_error(self, tenant: str) -> None:
        self._bump(self.append_errors, tenant)

    def count_append_rejected(self, tenant: str, reason: str) -> None:
        self._bump(self.appends_rejected, (tenant, reason))

    def count_dropped_append(self, tenant: str) -> None:
        self._bump(self.dropped_appends, tenant)

    def count_slow_query(self, tenant: str) -> None:
        self._bump(self.slow_queries, tenant)

    def observe_latency(self, op: str, seconds: float) -> None:
        with self._lock:
            summary = self._latency.get(op)
            if summary is None:
                summary = LatencySummary(
                    max_samples=self.max_latency_samples)
                self._latency[op] = summary
            summary.observe(seconds)

    def latency_quantiles(self, op: str) -> Dict[float, float]:
        with self._lock:
            summary = self._latency.get(op)
            return summary.quantiles() if summary is not None else {}

    # -- rendering -----------------------------------------------------
    def render(self, service_stats=None) -> str:
        """The Prometheus text exposition for everything recorded.

        ``service_stats`` (a
        :class:`~repro.service.service.ServiceStats`) contributes the
        engine-side gauges: queue depth, scheduler totals, Phase-1
        cache effectiveness and per-tenant fairness charges.
        """
        with self._lock:
            lines: List[str] = []
            self._counter(
                lines, "everest_gateway_queries_submitted_total",
                "Queries accepted per tenant.",
                {(("tenant", t),): v for t, v in self.submitted.items()})
            self._counter(
                lines, "everest_gateway_queries_completed_total",
                "Queries completed per tenant.",
                {(("tenant", t),): v for t, v in self.completed.items()})
            self._counter(
                lines, "everest_gateway_queries_failed_total",
                "Queries that raised per tenant.",
                {(("tenant", t),): v for t, v in self.failed.items()})
            self._counter(
                lines, "everest_gateway_queries_rejected_total",
                "Backpressure refusals per tenant and reason code.",
                {(("tenant", t), ("reason", r)): v
                 for (t, r), v in self.rejected.items()})
            self._counter(
                lines, "everest_gateway_appends_total",
                "Streaming appends applied per tenant.",
                {(("tenant", t),): v for t, v in self.appends.items()})
            self._counter(
                lines, "everest_gateway_appends_rejected_total",
                "Appends refused before any frame moved, per tenant "
                "and reason code.",
                {(("tenant", t), ("reason", r)): v
                 for (t, r), v in self.appends_rejected.items()})
            self._counter(
                lines, "everest_gateway_append_frames_total",
                "Frames revealed by appends per tenant.",
                {(("tenant", t),): v
                 for t, v in self.append_frames.items()})
            self._counter(
                lines, "everest_gateway_append_errors_total",
                "Appends whose refresh pass raised (frames still "
                "applied).",
                {(("tenant", t),): v
                 for t, v in self.append_errors.items()})
            self._counter(
                lines, "everest_gateway_appends_dropped_total",
                "Appends whose frames failed to land (invariant: 0).",
                {(("tenant", t),): v
                 for t, v in self.dropped_appends.items()})
            self._counter(
                lines, "everest_gateway_slow_queries_total",
                "Completed queries over the slow-query latency "
                "threshold, per tenant.",
                {(("tenant", t),): v
                 for t, v in self.slow_queries.items()})
            for op, summary in sorted(self._latency.items()):
                name = "everest_gateway_latency_seconds"
                lines.append(f"# TYPE {name} summary")
                for q, value in summary.quantiles().items():
                    lines.append(
                        f'{name}{{op="{_escape_label(op)}",'
                        f'quantile="{q:g}"}} {_format_value(value)}')
                lines.append(
                    f'{name}_count{{op="{_escape_label(op)}"}} '
                    f'{summary.count}')
                lines.append(
                    f'{name}_sum{{op="{_escape_label(op)}"}} '
                    f'{_format_value(summary.sum)}')
        if service_stats is not None:
            self._render_service(lines, service_stats)
        return "\n".join(lines) + "\n"

    @staticmethod
    def _counter(
        lines: List[str],
        name: str,
        help_text: str,
        samples: Mapping[LabelSet, float],
    ) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        for labels in sorted(samples):
            rendered = ",".join(
                f'{key}="{_escape_label(str(value))}"'
                for key, value in labels)
            lines.append(f"{name}{{{rendered}}} "
                         f"{_format_value(samples[labels])}")

    @staticmethod
    def _render_service(lines: List[str], stats) -> None:
        gauges = (
            ("everest_service_queue_depth",
             "Queries queued but not yet running.", stats.pending),
            ("everest_service_submitted_total",
             "Scheduler-accepted submissions.", stats.submitted),
            ("everest_service_completed_total",
             "Scheduler-completed queries.", stats.completed),
            ("everest_service_failed_total",
             "Scheduler-failed queries.", stats.failed),
            ("everest_service_rejected_total",
             "Scheduler/gateway-refused submissions.", stats.rejected),
            ("everest_service_phase1_builds_total",
             "Distinct Phase-1 builds paid for.", stats.builds),
            ("everest_service_phase1_hits_total",
             "Phase-1 leases served from the shared store.", stats.hits),
            ("everest_service_phase1_warm_hits_total",
             "Phase-1 leases served from the warm tier.",
             stats.warm_hits),
            ("everest_service_phase1_hit_rate",
             "Share of Phase-1 leases that skipped a build.",
             stats.phase1_hit_rate),
            ("everest_service_score_cache_entries",
             "Frames resident in shared score caches.",
             stats.cached_scores),
            ("everest_service_phase1_build_seconds",
             "Simulated seconds paid across every Phase-1 build, "
             "including rebuilds of evicted keys.",
             stats.build_seconds),
            ("everest_service_planned_total",
             "Queries submitted through an optimizer WorkloadPlan.",
             stats.planned),
            ("everest_service_calibration_observed_total",
             "Completed queries with an estimated-vs-actual cost pair.",
             stats.calibration_observed),
            ("everest_service_estimated_cost_seconds",
             "Sum of optimizer-predicted Phase-2 ledger seconds.",
             stats.estimated_seconds),
            ("everest_service_actual_cost_seconds",
             "Sum of actual Phase-2 ledger seconds over the same "
             "queries.", stats.actual_seconds),
            ("everest_service_calibration_error",
             "Mean |estimated - actual| / actual over observed "
             "queries.", stats.calibration_error),
        )
        for name, help_text, value in gauges:
            kind = "counter" if name.endswith("_total") else "gauge"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {_format_value(value)}")
        lines.append(
            "# HELP everest_service_tenant_charge_seconds "
            "Accumulated fairness charge per tenant (oracle seconds).")
        lines.append("# TYPE everest_service_tenant_charge_seconds gauge")
        for tenant in sorted(stats.tenants):
            lines.append(
                f'everest_service_tenant_charge_seconds'
                f'{{tenant="{_escape_label(tenant)}"}} '
                f'{_format_value(stats.tenants[tenant])}')


def parse_metrics_text(text: str) -> Dict[Tuple[str, LabelSet], float]:
    """Parse the exposition format back into ``{(name, labels): value}``.

    The inverse of :meth:`GatewayMetrics.render` for everything it
    emits — the reconciliation path for tests and the load benchmark.
    Raises :class:`ValueError` on a malformed sample line.
    """
    samples: Dict[Tuple[str, LabelSet], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        samples[(name, labels)] = value
    return samples


def _parse_sample(line: str) -> Tuple[str, LabelSet, float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        label_text, _, value_text = rest.rpartition("} ")
        if not _:
            raise ValueError(f"malformed metric line {line!r}")
        labels = tuple(
            _parse_label(part)
            for part in _split_labels(label_text) if part)
    else:
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            raise ValueError(f"malformed metric line {line!r}")
        name, value_text = parts
        labels = ()
    return name.strip(), labels, float(value_text)


def _split_labels(text: str) -> Iterable[str]:
    """Split ``k="v",k2="v2"`` at commas outside quoted values."""
    parts, buf, quoted, escaped = [], [], False, False
    for char in text:
        if escaped:
            buf.append(char)
            escaped = False
            continue
        if char == "\\":
            buf.append(char)
            escaped = True
            continue
        if char == '"':
            quoted = not quoted
            buf.append(char)
            continue
        if char == "," and not quoted:
            parts.append("".join(buf))
            buf = []
            continue
        buf.append(char)
    if buf:
        parts.append("".join(buf))
    return parts


def _parse_label(part: str) -> Tuple[str, str]:
    key, _, raw = part.partition("=")
    if not raw.startswith('"') or not raw.endswith('"'):
        raise ValueError(f"malformed label {part!r}")
    value = (
        raw[1:-1]
        .replace(r"\"", '"').replace(r"\n", "\n").replace(r"\\", "\\"))
    return key.strip(), value
