"""Per-tenant admission quotas for the gateway (DESIGN.md §10).

Two independent caps stand between a tenant and the scheduler:

* a **token bucket** per (tenant, operation class) — ``burst`` tokens
  deep, refilled continuously at ``rate`` tokens/second — smoothing
  sustained request rates while allowing short bursts;
* a **max-inflight** cap on queries a tenant has submitted but not
  yet seen complete, bounding how much of the result store and the
  scheduler queue any one tenant can occupy.

Violating either raises
:class:`~repro.errors.QuotaExceededError` — an
:class:`~repro.errors.AdmissionError` with ``reason`` ``"rate"`` or
``"max_inflight"`` and a ``retry_after`` hint — *before* the request
touches the service, so a rejected request never perturbs scheduler
state or cost ledgers. The gateway maps it to HTTP 429.

The clock is injectable (``clock=`` takes any ``() -> float`` in
seconds, default ``time.monotonic``) so quota behaviour is exactly
testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError, QuotaExceededError

Clock = Callable[[], float]


@dataclass(frozen=True)
class QuotaPolicy:
    """Admission limits for one tenant.

    ``None`` disables the corresponding cap. ``append_rate`` /
    ``append_burst`` default to the query bucket's values, so a policy
    that only names query limits still rate-limits appends.
    """

    rate: Optional[float] = None
    burst: int = 1
    max_inflight: Optional[int] = None
    append_rate: Optional[float] = None
    append_burst: Optional[int] = None

    def __post_init__(self):
        if self.rate is not None and not self.rate > 0:
            raise ConfigurationError(
                f"quota rate must be positive, got {self.rate!r}")
        if self.burst < 1:
            raise ConfigurationError(
                f"quota burst must be >= 1, got {self.burst!r}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be None or >= 1, "
                f"got {self.max_inflight!r}")
        if self.append_rate is not None and not self.append_rate > 0:
            raise ConfigurationError(
                f"append_rate must be positive, got {self.append_rate!r}")
        if self.append_burst is not None and self.append_burst < 1:
            raise ConfigurationError(
                f"append_burst must be >= 1, got {self.append_burst!r}")

    @staticmethod
    def unlimited() -> "QuotaPolicy":
        return QuotaPolicy()


class TokenBucket:
    """A continuously refilled token bucket (not thread-safe alone)."""

    def __init__(self, rate: float, burst: int, clock: Clock):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self) -> Optional[float]:
        """Take one token; returns None, or the retry-after on refusal."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


class _TenantState:
    """One tenant's buckets and inflight count."""

    def __init__(self, policy: QuotaPolicy, clock: Clock):
        self.policy = policy
        self.inflight = 0
        self.query_bucket = (
            TokenBucket(policy.rate, policy.burst, clock)
            if policy.rate is not None else None)
        append_rate = (
            policy.append_rate if policy.append_rate is not None
            else policy.rate)
        append_burst = (
            policy.append_burst if policy.append_burst is not None
            else policy.burst)
        self.append_bucket = (
            TokenBucket(append_rate, append_burst, clock)
            if append_rate is not None else None)


class QuotaBook:
    """Thread-safe per-tenant admission state for the whole gateway."""

    def __init__(
        self,
        *,
        default: Optional[QuotaPolicy] = None,
        overrides: Optional[Dict[str, QuotaPolicy]] = None,
        clock: Clock = time.monotonic,
    ):
        self.default = default if default is not None \
            else QuotaPolicy.unlimited()
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}

    def policy_for(self, tenant: str) -> QuotaPolicy:
        return self.overrides.get(tenant, self.default)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(self.policy_for(tenant), self._clock)
            self._tenants[tenant] = state
        return state

    def _take(self, tenant: str, bucket_name: str) -> None:
        state = self._state(tenant)
        bucket = getattr(state, bucket_name)
        if bucket is None:
            return
        retry_after = bucket.try_take()
        if retry_after is not None:
            raise QuotaExceededError(
                f"tenant {tenant!r} exceeded its "
                f"{bucket.rate:g}/s request rate; "
                f"retry in {retry_after:.3f}s",
                reason="rate", tenant=tenant, retry_after=retry_after)

    def admit_query(self, tenant: str) -> None:
        """Admit one query submission (rate + inflight), or raise.

        On success the tenant holds one inflight slot; the gateway
        MUST pair every successful admit with exactly one
        :meth:`release` when the query completes, fails, or the
        service refuses it downstream.
        """
        with self._lock:
            state = self._state(tenant)
            cap = state.policy.max_inflight
            if cap is not None and state.inflight >= cap:
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {state.inflight} "
                    f"queries in flight (max_inflight={cap})",
                    reason="max_inflight", tenant=tenant)
            self._take(tenant, "query_bucket")
            state.inflight += 1

    def release(self, tenant: str) -> None:
        """Return one inflight slot taken by :meth:`admit_query`."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None and state.inflight > 0:
                state.inflight -= 1

    def admit_append(self, tenant: str) -> None:
        """Admit one streaming append (rate only), or raise."""
        with self._lock:
            self._take(tenant, "append_bucket")

    def inflight(self, tenant: str) -> int:
        with self._lock:
            state = self._tenants.get(tenant)
            return state.inflight if state is not None else 0
