"""The gateway core: transport-free request handling (DESIGN.md §10).

:class:`Gateway` owns the multi-tenant front door over one
:class:`~repro.service.service.QueryService`: per-tenant quotas
(:mod:`repro.gateway.quotas`), the TTL-bounded async result store
(:mod:`repro.gateway.results`), the metrics registry
(:mod:`repro.gateway.metrics`), and a cache of resolved query targets
(sessions / corpora, keyed by canonical spec string) plus hosted
streaming sessions.

Everything is synchronous and transport-free — ``handle(method, path,
body)`` takes a parsed request and returns ``(status, payload)`` — so
the whole surface is testable in-process; :mod:`repro.gateway.http`
is a thin asyncio shell around it.

Routes::

    POST /query    -> 202 {"id": ...}        (or 429/400/503)
    GET  /result/q00000001 -> 200 pending|done|failed (410 expired)
    GET  /trace/q00000001  -> 200 span tree  (404 untraced/rotated)
    POST /stream   -> 201 opened             (409 duplicate id;
                                              'window' opens sliding)
    POST /append   -> 200 applied            (429 refresh refused,
                                              frames still applied)
    POST /tick     -> 200 applied            (windowed streams only:
                                              advance the clock,
                                              expire old frames)
    GET  /metrics  -> 200 Prometheus text
    GET  /stats    -> 200 ServiceStats JSON
    GET  /healthz  -> 200 {"ok": true}

Error contract: quota and admission refusals are HTTP 429 with the
:class:`~repro.errors.AdmissionError` reason code and a
``retry_after`` hint when the bucket can predict one; a closed
service is 503; malformed requests are 400; unknown ids 404; evicted
results 410. A 429 on ``/append`` still reports ``"applied": true``
with the advanced watermark when the frames landed before the refresh
dispatch was refused — the streaming fully-applied/retryable contract
surfaced on the wire.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..api.registry import resolve_query_spec
from ..config import EverestConfig
from ..errors import (
    AdmissionError,
    ConfigurationError,
    GatewayError,
    QueryError,
    QuotaExceededError,
    ResultExpiredError,
    ServiceClosedError,
)
from ..service.service import QueryService
from .metrics import GatewayMetrics
from .quotas import QuotaBook, QuotaPolicy
from .results import ResultStore
from .wire import (
    AppendRequest,
    QueryRequest,
    StreamRequest,
    TickRequest,
)

Clock = Callable[[], float]

#: (HTTP status, JSON-able dict or raw text payload).
Response = Tuple[int, object]


@dataclass
class GatewayConfig:
    """Deployment knobs for one :class:`Gateway`."""

    #: Configuration for sessions the gateway opens from specs
    #: (default: :meth:`EverestConfig.fast` keeps the demo responsive).
    session_config: Optional[EverestConfig] = None
    #: Keyword arguments forwarded to every video build
    #: (``num_frames``, ``seed``, ``scale``…).
    video_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Seconds a finished result stays pollable.
    result_ttl: float = 300.0
    max_results: Optional[int] = 100_000
    default_quota: QuotaPolicy = field(
        default_factory=QuotaPolicy.unlimited)
    tenant_quotas: Dict[str, QuotaPolicy] = field(default_factory=dict)
    #: Largest accepted request body (the HTTP layer enforces it).
    max_body_bytes: int = 1 << 20
    #: Wall-clock seconds over which a completed query counts toward
    #: ``everest_gateway_slow_queries_total``; ``None`` disables.
    slow_query_seconds: Optional[float] = 5.0


class Gateway:
    """Multi-tenant HTTP/JSON front door over a query service.

    Pass an existing ``service`` to front one you manage (it stays
    yours to close), or none to let the gateway own a private one
    (``**service_kwargs`` forward to its constructor; ``close()``
    closes it). The ``clock`` (monotonic seconds) drives quotas,
    result TTLs and latency metrics — injectable for deterministic
    tests.
    """

    def __init__(
        self,
        service: Optional[QueryService] = None,
        *,
        config: Optional[GatewayConfig] = None,
        clock: Clock = time.monotonic,
        **service_kwargs,
    ):
        if service is not None and service_kwargs:
            raise ConfigurationError(
                "pass service= or QueryService kwargs, not both")
        self.config = config if config is not None else GatewayConfig()
        self._owns_service = service is None
        self.service = service if service is not None \
            else QueryService(**service_kwargs)
        self._clock = clock
        self.metrics = GatewayMetrics()
        self.quotas = QuotaBook(
            default=self.config.default_quota,
            overrides=self.config.tenant_quotas,
            clock=clock,
        )
        self.results = ResultStore(
            ttl=self.config.result_ttl,
            max_entries=self.config.max_results,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        #: canonical spec string -> Session | VideoCorpus.
        self._targets: Dict[str, object] = {}
        self._streams: Dict[str, "_StreamState"] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body=None) -> Response:
        """Dispatch one parsed request; never raises.

        Returns ``(status, payload)`` where the payload is a JSON-able
        dict — except ``GET /metrics``, whose payload is the
        Prometheus text exposition string.
        """
        try:
            return self._route(method.upper(), path, body)
        except BaseException as error:  # noqa: BLE001 - wire boundary
            return self._error_response(error)

    def _route(self, method: str, path: str, body) -> Response:
        if path == "/query" and method == "POST":
            return self.submit_query(body)
        if path.startswith("/result/") and method == "GET":
            return self.get_result(path[len("/result/"):])
        if path.startswith("/trace/") and method == "GET":
            return self.get_trace(path[len("/trace/"):])
        if path == "/stream" and method == "POST":
            return self.open_stream(body)
        if path == "/append" and method == "POST":
            return self.append(body)
        if path == "/tick" and method == "POST":
            return self.tick(body)
        if path == "/metrics" and method == "GET":
            return 200, self.metrics.render(self.service.stats())
        if path == "/stats" and method == "GET":
            return 200, self.service.stats().as_dict()
        if path == "/healthz" and method == "GET":
            return 200, {
                "ok": not self._closed,
                "pending_results": len(self.results.pending_ids()),
                "streams": len(self._streams),
            }
        known = {"/query", "/result/<id>", "/trace/<id>", "/stream",
                 "/append", "/tick", "/metrics", "/stats", "/healthz"}
        prefixed = {"/result/<id>": "/result/", "/trace/<id>": "/trace/"}
        for route in known:
            prefix = prefixed.get(route)
            if path == route or (prefix is not None
                                 and path.startswith(prefix)):
                return 405, {
                    "error": "MethodNotAllowed",
                    "message": f"{method} not supported on {path}",
                }
        return 404, {
            "error": "NotFound",
            "message": f"no route {path}; known: {sorted(known)}",
        }

    @staticmethod
    def _error_response(error: BaseException) -> Response:
        payload = {
            "error": type(error).__name__,
            "message": str(error),
        }
        if isinstance(error, ResultExpiredError):
            return 410, payload
        if isinstance(error, AdmissionError):  # incl. QuotaExceededError
            payload["reason"] = error.reason
            if error.retry_after is not None:
                payload["retry_after"] = error.retry_after
            return 429, payload
        if isinstance(error, ServiceClosedError):
            return 503, payload
        if isinstance(error, (ConfigurationError, QueryError,
                              GatewayError, ValueError)):
            # ValueError covers parameter combinations the engine
            # itself refuses (e.g. a bootstrap segment too small to
            # train on): the client's input, a 400 not a 500.
            return 400, payload
        if isinstance(error, KeyError):
            payload["message"] = str(error.args[0]) if error.args \
                else str(error)
            return 404, payload
        return 500, payload

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def submit_query(self, body) -> Response:
        """``POST /query``: admit, submit, return a poll id (202)."""
        request = QueryRequest.from_body(body)
        tenant = request.tenant
        try:
            self.quotas.admit_query(tenant)
        except QuotaExceededError as error:
            self._count_rejection(tenant, error.reason)
            raise
        # The tenant now holds an inflight slot; every path out of this
        # block either hands it to the completion callback or returns it.
        result_id = None
        try:
            target = self._target(request)
            query = request.build(target)
            result_id = f"q{next(self._seq):08d}"
            self.results.put_pending(
                result_id, tenant, request.spec_string)
            submitted_at = self._clock()
            future = self.service.submit(query, tenant=tenant)
        except BaseException as error:  # noqa: BLE001 - re-raised
            self.quotas.release(tenant)
            if isinstance(error, AdmissionError):
                self.metrics.count_rejected(tenant, error.reason)
            elif isinstance(error, ServiceClosedError):
                self.metrics.count_rejected(tenant, "closed")
            if result_id is not None:
                self.results.fail(result_id, error)
            raise
        self.metrics.count_submitted(tenant)
        trace_id = getattr(future, "trace_id", None)
        if trace_id is not None:
            # Pending polls already see the trace id; the summary
            # lands below when the query (and its trace) finishes.
            self.results.set_trace(result_id, trace_id)

        def on_done(done_future, *, _id=result_id, _t=tenant,
                    _start=submitted_at, _trace_id=trace_id):
            try:
                report = done_future.result(0)
            except BaseException as error:  # noqa: BLE001 - recorded
                self.results.fail(_id, error)
                self.metrics.count_failed(_t)
            else:
                self.results.complete(_id, report)
                self.metrics.count_completed(_t)
            elapsed = self._clock() - _start
            self.metrics.observe_latency("query", elapsed)
            threshold = self.config.slow_query_seconds
            if threshold is not None and elapsed > threshold:
                self.metrics.count_slow_query(_t)
            if _trace_id is not None:
                trace = self.service.tracer.get(_trace_id)
                if trace is not None:
                    self.results.set_trace(
                        _id, _trace_id, summary=trace.summary())
            self.quotas.release(_t)

        future.add_done_callback(on_done)
        return 202, {
            "id": result_id,
            "status": "pending",
            "tenant": tenant,
            "spec": request.spec_string,
        }

    def get_result(self, result_id: str) -> Response:
        """``GET /result/<id>``: the entry's current lifecycle state."""
        entry = self.results.get(result_id)
        return 200, entry.body()

    def get_trace(self, ident: str) -> Response:
        """``GET /trace/<id>``: the full span tree for one query.

        Accepts a result id (``q…``, resolved through the result
        store — 410 when that entry expired) or a raw trace id
        (``t…``). 404 when the query was never traced or the trace
        rotated out of the tracer's ring.
        """
        trace_id = ident
        if ident.startswith("q"):
            entry = self.results.get(ident)
            if entry.trace_id is None:
                raise KeyError(
                    f"result {ident!r} has no trace "
                    f"(tracing disabled on the service?)")
            trace_id = entry.trace_id
        trace = self.service.tracer.get(trace_id)
        if trace is None:
            raise KeyError(
                f"no trace {trace_id!r} (tracing disabled, or it "
                f"rotated out of the in-memory ring)")
        return 200, trace.to_dict()

    def _target(self, request: QueryRequest):
        """The cached session/corpus for a canonical spec string.

        One target per spec for the whole gateway — this is what makes
        cross-tenant Phase-1 and score-cache sharing (and scheduler
        batching by ``(session, phase1_key)``) happen for wire
        traffic exactly as for in-process ``service.submit`` calls.
        The key drops any ``?window=`` suffix: a sliding window is a
        query clause, not a different session, so windowed and
        unwindowed traffic over one video share Phase 1.
        """
        cache_key = request.spec.without_window().canonical()
        with self._lock:
            target = self._targets.get(cache_key)
        if target is not None:
            return target
        config = self.config.session_config
        built = resolve_query_spec(
            cache_key,
            config=config if config is not None else EverestConfig.fast(),
            **self.config.video_kwargs,
        )
        with self._lock:
            # Lost a build race: keep the first, drop ours.
            target = self._targets.setdefault(cache_key, built)
        if target is built and request.spec.kind == "video":
            self.service.adopt_session(target)
        return target

    def _count_rejection(self, tenant: str, reason: str) -> None:
        """Land one quota refusal in both ledgers (gateway + service)."""
        self.metrics.count_rejected(tenant, reason)
        self.service.count_rejection(tenant, reason)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def open_stream(self, body) -> Response:
        """``POST /stream``: host a streaming session + live top-k."""
        request = StreamRequest.from_body(body)
        with self._lock:
            if request.stream_id in self._streams:
                return 409, {
                    "error": "StreamExists",
                    "message": f"stream {request.stream_id!r} is "
                               f"already open",
                }
        config = self.config.session_config
        open_kwargs = {}
        if request.window_seconds is not None:
            open_kwargs["window_seconds"] = request.window_seconds
        stream = self.service.open_stream(
            request.spec.video,
            request.spec.udf,
            initial_frames=request.initial_frames,
            tenant=request.tenant,
            config=config if config is not None else EverestConfig.fast(),
            video_kwargs=dict(self.config.video_kwargs),
            **open_kwargs,
        )
        live = stream.query().topk(request.k) \
            .guarantee(request.guarantee).subscribe()
        state = _StreamState(
            stream_id=request.stream_id,
            tenant=request.tenant,
            spec=request.spec_string,
            stream=stream,
            live=live,
        )
        with self._lock:
            raced = self._streams.setdefault(request.stream_id, state)
        if raced is not state:
            return 409, {
                "error": "StreamExists",
                "message": f"stream {request.stream_id!r} is "
                           f"already open",
            }
        payload = {
            "stream": request.stream_id,
            "tenant": request.tenant,
            "spec": request.spec_string,
            "watermark": stream.watermark,
            "report_json": live.latest.to_json(),
        }
        if request.window_seconds is not None:
            payload.update(
                window_seconds=request.window_seconds,
                window_frames=stream.window_frames,
                window_lo=stream.window_lo,
            )
        return 201, payload

    def append(self, body) -> Response:
        """``POST /append``: reveal frames, fully-applied semantics.

        The response always tells the truth about frame application:
        ``applied: true`` with the advanced watermark whenever the
        frames landed — even when the subscription refresh was refused
        downstream (429/503, ``retryable: true``; re-running the
        *refresh* is the retry, not re-sending the frames). A quota
        refusal here happens *before* any frame moves, so that 429 is
        ``applied: false`` and the append itself is the retry.
        """
        request = AppendRequest.from_body(body)
        with self._lock:
            state = self._streams.get(request.stream_id)
        if state is None:
            raise KeyError(
                f"no open stream {request.stream_id!r}; "
                f"POST /stream first")
        try:
            self.quotas.admit_append(request.tenant)
        except QuotaExceededError as error:
            # Refused before any frame moved: the append itself is the
            # retry, and both rejection ledgers record it.
            self.metrics.count_append_rejected(
                request.tenant, error.reason)
            self.service.count_rejection(request.tenant, error.reason)
            raise
        started = self._clock()
        with state.lock:
            before = state.stream.watermark
            try:
                result = state.stream.append(request.frames)
            except BaseException as error:  # noqa: BLE001 - wire boundary
                applied = state.stream.watermark > before
                if not applied:
                    # Nothing moved (e.g. the source is exhausted):
                    # an ordinary error response.
                    raise
                # Frames landed; only the refresh pass failed. Report
                # the truth: applied, retryable, watermark advanced.
                self.metrics.count_append(
                    request.tenant, request.frames)
                self.metrics.count_append_error(request.tenant)
                # No rejection count here: an AdmissionError from the
                # refresh dispatch was already ledgered by the
                # scheduler it bounced off, and the append itself was
                # applied — only the refresh is retryable.
                status, payload = self._error_response(error)
                payload.update(
                    applied=True,
                    retryable=True,
                    stream=request.stream_id,
                    watermark=state.stream.watermark,
                )
                return status, payload
        self.metrics.count_append(request.tenant, request.frames)
        self.metrics.observe_latency("append", self._clock() - started)
        payload = result.to_dict()
        payload.update(applied=True, stream=request.stream_id)
        return 200, payload

    def tick(self, body) -> Response:
        """``POST /tick``: advance a windowed stream's clock (expiry).

        Same fully-applied contract as ``/append``: a quota refusal
        happens before the clock moves (``applied: false``, re-send
        the tick); once the horizon advanced, any downstream refresh
        refusal reports ``applied: true, retryable: true`` and only
        the refresh is the retry. Ticking an unwindowed stream is a
        400 — expiry only exists where a window does.
        """
        request = TickRequest.from_body(body)
        with self._lock:
            state = self._streams.get(request.stream_id)
        if state is None:
            raise KeyError(
                f"no open stream {request.stream_id!r}; "
                f"POST /stream first")
        if not hasattr(state.stream, "tick"):
            raise QueryError(
                f"stream {request.stream_id!r} has no sliding window; "
                f"open it with a 'window' field (or '?window=' spec "
                f"suffix) to enable /tick")
        try:
            self.quotas.admit_append(request.tenant)
        except QuotaExceededError as error:
            self.metrics.count_append_rejected(
                request.tenant, error.reason)
            self.service.count_rejection(request.tenant, error.reason)
            raise
        started = self._clock()
        with state.lock:
            before = state.stream.horizon
            try:
                result = state.stream.tick(request.frames)
            except BaseException as error:  # noqa: BLE001 - wire boundary
                applied = state.stream.horizon > before
                if not applied:
                    raise
                # The clock moved; only the refresh pass failed.
                self.metrics.count_append_error(request.tenant)
                status, payload = self._error_response(error)
                payload.update(
                    applied=True,
                    retryable=True,
                    stream=request.stream_id,
                    horizon=state.stream.horizon,
                )
                return status, payload
        self.metrics.observe_latency("tick", self._clock() - started)
        payload = result.to_dict()
        payload.update(applied=True, stream=request.stream_id)
        return 200, payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the gateway (and its service if it owns one)."""
        self._closed = True
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class _StreamState:
    """One hosted stream: its session, live query and append lock."""

    stream_id: str
    tenant: str
    spec: str
    stream: object
    live: object
    #: Appends are serialized per stream (streaming state is
    #: single-writer); different streams append concurrently.
    lock: threading.Lock = field(default_factory=threading.Lock)
